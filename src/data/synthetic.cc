#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/status.h"
#include "data/concepts.h"

namespace uhscm::data {

namespace {

/// Zipf-weighted class sampler: weight of the class at popularity rank r
/// (0-based) is 1/(r+1)^s. Rank order follows class_ids order, which is
/// itself a fixed published list, so popularity is deterministic.
class ZipfClassSampler {
 public:
  ZipfClassSampler(int num_classes, float exponent) {
    cumulative_.reserve(static_cast<size_t>(num_classes));
    double total = 0.0;
    for (int r = 0; r < num_classes; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
      cumulative_.push_back(total);
    }
  }

  int Sample(Rng* rng) const {
    const double target = rng->Uniform() * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
    return static_cast<int>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

/// Samples a label set for a multi-label image: one primary class plus a
/// geometric number of distinct extras, all Zipf-popular.
std::vector<int> SampleLabelSet(const std::vector<int>& class_ids,
                                const ZipfClassSampler& sampler,
                                const SyntheticOptions& options, Rng* rng) {
  std::set<int> chosen;
  chosen.insert(class_ids[static_cast<size_t>(sampler.Sample(rng))]);
  while (static_cast<int>(chosen.size()) < options.max_labels &&
         rng->Bernoulli(options.extra_label_prob)) {
    chosen.insert(class_ids[static_cast<size_t>(sampler.Sample(rng))]);
  }
  return std::vector<int>(chosen.begin(), chosen.end());
}

/// Fills pixels/labels for `count` images drawn from the given label
/// sampler.
template <typename LabelSampler>
void GenerateImages(SemanticWorld* world, const SyntheticOptions& options,
                    int count, LabelSampler&& sampler, Rng* rng,
                    Dataset* dataset, int* next_row) {
  for (int i = 0; i < count; ++i) {
    std::vector<int> label_ids = sampler(i);
    std::sort(label_ids.begin(), label_ids.end());
    const linalg::Vector img =
        world->RenderImage(label_ids, options.noise_scale, rng);
    dataset->pixels.SetRow(*next_row, img);
    dataset->labels[static_cast<size_t>(*next_row)] = std::move(label_ids);
    ++(*next_row);
  }
}

/// Shared assembly: allocate, generate database then query images, then
/// carve the split (train sampled from the database).
Dataset BuildDataset(const std::string& name,
                     const std::vector<std::string>& class_names,
                     bool multi_label, SemanticWorld* world,
                     const SyntheticOptions& options, Rng* rng) {
  UHSCM_CHECK(options.sizes.train <= options.sizes.database,
              "train set must be a subset of the database");
  Dataset dataset;
  dataset.name = name;
  dataset.multi_label = multi_label;
  dataset.class_names = class_names;
  dataset.class_ids.reserve(class_names.size());
  for (const std::string& cls : class_names) {
    dataset.class_ids.push_back(world->RegisterConcept(cls));
  }

  const int num_classes = static_cast<int>(dataset.class_ids.size());
  const int n_db = options.sizes.database;
  const int n_query = options.sizes.query;
  const int total = n_db + n_query;
  dataset.pixels = linalg::Matrix(total, world->pixel_dim());
  dataset.labels.resize(static_cast<size_t>(total));

  int next_row = 0;
  const ZipfClassSampler zipf(num_classes, options.zipf_exponent);
  auto sampler = [&](int i) -> std::vector<int> {
    if (multi_label) {
      return SampleLabelSet(dataset.class_ids, zipf, options, rng);
    }
    // Single-label: balanced round-robin keeps per-class counts equal, as
    // in the paper's per-class CIFAR10 protocol.
    return {dataset.class_ids[static_cast<size_t>(i % num_classes)]};
  };
  GenerateImages(world, options, n_db, sampler, rng, &dataset, &next_row);
  GenerateImages(world, options, n_query, sampler, rng, &dataset, &next_row);

  dataset.split.database.resize(static_cast<size_t>(n_db));
  for (int i = 0; i < n_db; ++i) dataset.split.database[static_cast<size_t>(i)] = i;
  dataset.split.query.resize(static_cast<size_t>(n_query));
  for (int i = 0; i < n_query; ++i) {
    dataset.split.query[static_cast<size_t>(i)] = n_db + i;
  }

  if (multi_label) {
    dataset.split.train =
        rng->SampleWithoutReplacement(n_db, options.sizes.train);
  } else {
    // Balanced train subset: train/num_classes images per class. Because
    // database images were generated round-robin, stratified sampling is a
    // per-class draw over i % num_classes strata.
    const int per_class = options.sizes.train / num_classes;
    std::vector<std::vector<int>> by_class(static_cast<size_t>(num_classes));
    for (int i = 0; i < n_db; ++i) {
      by_class[static_cast<size_t>(i % num_classes)].push_back(i);
    }
    for (int c = 0; c < num_classes; ++c) {
      auto& pool = by_class[static_cast<size_t>(c)];
      const int take = std::min<int>(per_class, static_cast<int>(pool.size()));
      std::vector<int> picks = rng->SampleWithoutReplacement(
          static_cast<int>(pool.size()), take);
      for (int p : picks) dataset.split.train.push_back(pool[static_cast<size_t>(p)]);
    }
  }
  std::sort(dataset.split.train.begin(), dataset.split.train.end());
  return dataset;
}

}  // namespace

Dataset MakeCifar10Like(SemanticWorld* world, const SyntheticOptions& options,
                        Rng* rng) {
  return BuildDataset("cifar10-like", Cifar10Classes(), /*multi_label=*/false,
                      world, options, rng);
}

Dataset MakeNusWideLike(SemanticWorld* world, const SyntheticOptions& options,
                        Rng* rng) {
  return BuildDataset("nuswide-like", NusWide21Classes(), /*multi_label=*/true,
                      world, options, rng);
}

Dataset MakeMirFlickrLike(SemanticWorld* world,
                          const SyntheticOptions& options, Rng* rng) {
  return BuildDataset("mirflickr-like", MirFlickr24Classes(),
                      /*multi_label=*/true, world, options, rng);
}

Dataset MakeDatasetByName(const std::string& name, SemanticWorld* world,
                          const SyntheticOptions& options, Rng* rng) {
  if (name == "cifar") return MakeCifar10Like(world, options, rng);
  if (name == "nuswide") return MakeNusWideLike(world, options, rng);
  if (name == "flickr") return MakeMirFlickrLike(world, options, rng);
  UHSCM_CHECK(false, "MakeDatasetByName: unknown dataset name");
  return {};
}

SyntheticOptions DefaultOptionsFor(const std::string& name, double scale) {
  SyntheticOptions options;
  if (name == "cifar") {
    options.sizes.database = static_cast<int>(4000 * scale);
    options.sizes.train = static_cast<int>(1000 * scale);
    options.sizes.query = static_cast<int>(400 * scale);
    options.noise_scale = 1.2f;
  } else if (name == "nuswide") {
    options.sizes.database = static_cast<int>(4000 * scale);
    options.sizes.train = static_cast<int>(1050 * scale);
    options.sizes.query = static_cast<int>(400 * scale);
    options.noise_scale = 1.0f;
    options.extra_label_prob = 0.5f;
  } else if (name == "flickr") {
    options.sizes.database = static_cast<int>(3500 * scale);
    options.sizes.train = static_cast<int>(1000 * scale);
    options.sizes.query = static_cast<int>(350 * scale);
    options.noise_scale = 1.0f;
    options.extra_label_prob = 0.45f;
  } else {
    UHSCM_CHECK(false, "DefaultOptionsFor: unknown dataset name");
  }
  return options;
}

}  // namespace uhscm::data
