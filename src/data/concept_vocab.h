#ifndef UHSCM_DATA_CONCEPT_VOCAB_H_
#define UHSCM_DATA_CONCEPT_VOCAB_H_

#include <string>
#include <vector>

#include "data/world.h"

namespace uhscm::data {

/// \brief The "randomly collected set of concepts" C = {c_i} of §3.3.1:
/// surface names plus their universe concept ids for a given world.
///
/// Factories mirror the paper's three choices: the 81 NUS-WIDE categories
/// (default), the 80 MS-COCO categories (UHSCM_coco), and their union
/// deduplicated on canonical names (UHSCM_nus&coco, 153 in the paper;
/// slightly fewer here because canonicalization merges synonyms — the
/// overlap structure is what the ablation depends on).
struct ConceptVocab {
  std::vector<std::string> names;
  std::vector<int> ids;

  int size() const { return static_cast<int>(names.size()); }
};

/// 81 NUS-WIDE concepts.
ConceptVocab MakeNusVocab(SemanticWorld* world);

/// 80 MS-COCO categories.
ConceptVocab MakeCocoVocab(SemanticWorld* world);

/// Union of the two, deduplicated on canonical concept ids.
ConceptVocab MakeCombinedVocab(SemanticWorld* world);

/// Keeps only the vocabulary entries whose position is in `keep`
/// (ascending positions into the original vocab).
ConceptVocab SubsetVocab(const ConceptVocab& vocab,
                         const std::vector<int>& keep);

}  // namespace uhscm::data

#endif  // UHSCM_DATA_CONCEPT_VOCAB_H_
