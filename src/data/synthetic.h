#ifndef UHSCM_DATA_SYNTHETIC_H_
#define UHSCM_DATA_SYNTHETIC_H_

#include "common/rng.h"
#include "data/dataset.h"
#include "data/world.h"

namespace uhscm::data {

/// Size knobs for a synthetic dataset. The defaults reproduce the paper's
/// split *proportions* (§4.1) at roughly one-tenth scale so a full
/// Table 1 regenerates in minutes; multiply with `scale` to grow.
struct SyntheticSizes {
  int database = 4000;  ///< database images (training set is a subset)
  int train = 1000;     ///< training images sampled from the database
  int query = 400;      ///< held-out query images
};

/// Generator parameters shared by the three dataset builders.
struct SyntheticOptions {
  SyntheticSizes sizes;
  /// Pixel noise; higher for the multi-label datasets where the paper
  /// observes concept mining to be harder.
  float noise_scale = 0.8f;
  /// Multi-label only: probability of adding each further label
  /// (geometric; at most max_labels in total).
  float extra_label_prob = 0.45f;
  int max_labels = 3;
  /// Multi-label only: Zipf exponent of class popularity. Real NUS-WIDE
  /// and MIRFlickr annotations are heavily skewed (sky/person/clouds tag
  /// large fractions of the corpus), which raises the share of relevant
  /// pairs — and thus every method's MAP floor — far above the uniform
  /// case. 0 = uniform.
  float zipf_exponent = 0.8f;
};

/// Builds a CIFAR10-like single-label dataset (10 balanced classes).
/// Class names are the CIFAR10 classes; per-class counts are
/// sizes.{database,train,query} / 10.
Dataset MakeCifar10Like(SemanticWorld* world, const SyntheticOptions& options,
                        Rng* rng);

/// Builds a NUS-WIDE-like multi-label dataset over the 21 most-frequent
/// NUS-WIDE classes.
Dataset MakeNusWideLike(SemanticWorld* world, const SyntheticOptions& options,
                        Rng* rng);

/// Builds a MIRFlickr-25K-like multi-label dataset over 24 classes.
Dataset MakeMirFlickrLike(SemanticWorld* world,
                          const SyntheticOptions& options, Rng* rng);

/// Dataset selector used by benches ("cifar", "nuswide", "flickr").
Dataset MakeDatasetByName(const std::string& name, SemanticWorld* world,
                          const SyntheticOptions& options, Rng* rng);

/// Default per-dataset options matching DESIGN.md (noise profile per
/// dataset; sizes from `scale` in (0, +inf), 1.0 = the defaults above).
SyntheticOptions DefaultOptionsFor(const std::string& name,
                                   double scale = 1.0);

}  // namespace uhscm::data

#endif  // UHSCM_DATA_SYNTHETIC_H_
