#ifndef UHSCM_DATA_DATASET_H_
#define UHSCM_DATA_DATASET_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace uhscm::data {

/// Train/database/query index partition following the paper's protocol
/// (§4.1): queries are held out; the training set is a subset of the
/// database.
struct Split {
  std::vector<int> train;
  std::vector<int> database;
  std::vector<int> query;
};

/// \brief An image collection with ground-truth labels.
///
/// `labels[i]` holds the universe concept ids an image is annotated with
/// (one id for single-label datasets). Ground truth is used only for
/// evaluation (and by the generative simulators) — the hashing methods
/// under test never see it.
struct Dataset {
  std::string name;
  /// n x pixel_dim raw image matrix.
  linalg::Matrix pixels;
  /// Per-image label sets (universe concept ids, ascending).
  std::vector<std::vector<int>> labels;
  /// Universe concept ids of the dataset's classes.
  std::vector<int> class_ids;
  /// Human-readable class names aligned with class_ids.
  std::vector<std::string> class_names;
  bool multi_label = false;
  Split split;

  int num_images() const { return pixels.rows(); }
  int num_classes() const { return static_cast<int>(class_ids.size()); }

  /// Ground-truth relevance for retrieval metrics: two images are a
  /// similar pair iff they share at least one label (§4.2).
  bool Relevant(int i, int j) const;
};

/// Returns `labels` re-encoded as a dense n x num_classes 0/1 matrix in
/// class_ids order (used by the evaluation metrics and t-SNE coloring).
linalg::Matrix LabelMatrix(const Dataset& dataset);

/// For single-label use (coloring, per-class sampling): the index into
/// class_ids of the first label of each image.
std::vector<int> PrimaryClassIndex(const Dataset& dataset);

}  // namespace uhscm::data

#endif  // UHSCM_DATA_DATASET_H_
