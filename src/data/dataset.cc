#include "data/dataset.h"

#include <algorithm>
#include <unordered_map>

#include "common/status.h"

namespace uhscm::data {

bool Dataset::Relevant(int i, int j) const {
  const auto& a = labels[static_cast<size_t>(i)];
  const auto& b = labels[static_cast<size_t>(j)];
  // Both sets are sorted ascending; merge-intersect.
  size_t x = 0, y = 0;
  while (x < a.size() && y < b.size()) {
    if (a[x] == b[y]) return true;
    if (a[x] < b[y]) {
      ++x;
    } else {
      ++y;
    }
  }
  return false;
}

linalg::Matrix LabelMatrix(const Dataset& dataset) {
  std::unordered_map<int, int> class_pos;
  for (size_t c = 0; c < dataset.class_ids.size(); ++c) {
    class_pos.emplace(dataset.class_ids[c], static_cast<int>(c));
  }
  linalg::Matrix out(dataset.num_images(), dataset.num_classes());
  for (int i = 0; i < dataset.num_images(); ++i) {
    for (int id : dataset.labels[static_cast<size_t>(i)]) {
      auto it = class_pos.find(id);
      UHSCM_CHECK(it != class_pos.end(),
                  "LabelMatrix: label not among dataset classes");
      out(i, it->second) = 1.0f;
    }
  }
  return out;
}

std::vector<int> PrimaryClassIndex(const Dataset& dataset) {
  std::unordered_map<int, int> class_pos;
  for (size_t c = 0; c < dataset.class_ids.size(); ++c) {
    class_pos.emplace(dataset.class_ids[c], static_cast<int>(c));
  }
  std::vector<int> out(static_cast<size_t>(dataset.num_images()), 0);
  for (int i = 0; i < dataset.num_images(); ++i) {
    const auto& lab = dataset.labels[static_cast<size_t>(i)];
    UHSCM_CHECK(!lab.empty(), "PrimaryClassIndex: image without labels");
    auto it = class_pos.find(lab[0]);
    UHSCM_CHECK(it != class_pos.end(),
                "PrimaryClassIndex: label not among dataset classes");
    out[static_cast<size_t>(i)] = it->second;
  }
  return out;
}

}  // namespace uhscm::data
