#include "data/world.h"

#include <cmath>

#include "common/status.h"
#include "data/concepts.h"
#include "linalg/ops.h"

namespace uhscm::data {

SemanticWorld::SemanticWorld(uint64_t seed, const WorldOptions& options)
    : options_(options), seed_(seed) {
  UHSCM_CHECK(options_.pixel_dim > 0, "pixel_dim must be positive");
  UHSCM_CHECK(options_.num_groups > 0, "num_groups must be positive");
  UHSCM_CHECK(options_.group_correlation >= 0.0f &&
                  options_.group_correlation < 1.0f,
              "group_correlation must be in [0, 1)");
  // Deterministic group means from the seed.
  Rng rng(seed_ ^ 0xA5A5A5A5ULL);
  group_means_.reserve(static_cast<size_t>(options_.num_groups));
  for (int g = 0; g < options_.num_groups; ++g) {
    linalg::Vector mean(static_cast<size_t>(options_.pixel_dim));
    for (auto& v : mean) v = static_cast<float>(rng.Normal());
    const float norm = linalg::Norm2(mean);
    for (auto& v : mean) v /= norm;
    group_means_.push_back(std::move(mean));
  }
  Rng style_rng(seed_ ^ 0x57F1E5ULL);
  styles_.reserve(static_cast<size_t>(std::max(options_.num_styles, 0)));
  for (int s = 0; s < options_.num_styles; ++s) {
    linalg::Vector style(static_cast<size_t>(options_.pixel_dim));
    for (auto& v : style) v = static_cast<float>(style_rng.Normal());
    const float norm = linalg::Norm2(style);
    for (auto& v : style) v /= norm;
    styles_.push_back(std::move(style));
  }
}

int SemanticWorld::RegisterConcept(const std::string& name) {
  const std::string canon = CanonicalConceptName(name);
  auto it = ids_.find(canon);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(names_.size());
  names_.push_back(canon);
  ids_.emplace(canon, id);
  prototypes_.push_back(MakePrototype(id));
  return id;
}

int SemanticWorld::FindConcept(const std::string& name) const {
  auto it = ids_.find(CanonicalConceptName(name));
  return it == ids_.end() ? -1 : it->second;
}

const linalg::Vector& SemanticWorld::Prototype(int id) const {
  UHSCM_CHECK(id >= 0 && id < num_concepts(), "Prototype: id out of range");
  return prototypes_[static_cast<size_t>(id)];
}

linalg::Vector SemanticWorld::MakePrototype(int id) {
  // Prototype = sqrt(1 - rho^2) * g_id + rho * group_mean, unit-normalized.
  // Deterministic per (seed, id).
  Rng rng(seed_ + 0x1000003ULL * static_cast<uint64_t>(id + 1));
  linalg::Vector proto(static_cast<size_t>(options_.pixel_dim));
  for (auto& v : proto) v = static_cast<float>(rng.Normal());
  float norm = linalg::Norm2(proto);
  for (auto& v : proto) v /= norm;

  const float rho = options_.group_correlation;
  const int group = id % options_.num_groups;
  const linalg::Vector& mean = group_means_[static_cast<size_t>(group)];
  const float a = std::sqrt(1.0f - rho * rho);
  for (size_t i = 0; i < proto.size(); ++i) {
    proto[i] = a * proto[i] + rho * mean[i];
  }
  norm = linalg::Norm2(proto);
  for (auto& v : proto) v /= norm;
  return proto;
}

linalg::Vector SemanticWorld::RenderImage(const std::vector<int>& label_ids,
                                          float noise_scale, Rng* rng) const {
  UHSCM_CHECK(!label_ids.empty(), "RenderImage: image needs >= 1 label");
  linalg::Vector img(static_cast<size_t>(options_.pixel_dim), 0.0f);
  for (int id : label_ids) {
    const linalg::Vector& proto = Prototype(id);
    const float w = static_cast<float>(rng->Uniform(0.7, 1.3));
    for (size_t i = 0; i < img.size(); ++i) img[i] += w * proto[i];
  }
  // Style component: one shared nuisance direction per image.
  if (!styles_.empty() && options_.style_strength > 0.0f) {
    const linalg::Vector& style = styles_[static_cast<size_t>(
        rng->UniformInt(styles_.size()))];
    for (size_t i = 0; i < img.size(); ++i) {
      img[i] += options_.style_strength * style[i];
    }
  }
  // Noise is scaled so its expected norm is `noise_scale` relative to the
  // unit-norm signal mixture (per-dimension sigma = scale / sqrt(dim)).
  const float sigma =
      noise_scale / std::sqrt(static_cast<float>(options_.pixel_dim));
  for (auto& v : img) {
    v += sigma * static_cast<float>(rng->Normal());
  }
  const float norm = linalg::Norm2(img);
  if (norm > 1e-12f) {
    for (auto& v : img) v /= norm;
  }
  return img;
}

}  // namespace uhscm::data
