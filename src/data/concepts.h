#ifndef UHSCM_DATA_CONCEPTS_H_
#define UHSCM_DATA_CONCEPTS_H_

#include <string>
#include <vector>

namespace uhscm::data {

/// The 81 NUS-WIDE concept labels (the paper's default random concept set,
/// §3.3.1 / §4.1).
const std::vector<std::string>& NusWide81Concepts();

/// The 21 most-frequent NUS-WIDE classes used for retrieval evaluation
/// (§4.1).
const std::vector<std::string>& NusWide21Classes();

/// The 80 MS-COCO categories (UHSCM_coco ablation, §4.4.1).
const std::vector<std::string>& Coco80Concepts();

/// The 10 CIFAR10 classes.
const std::vector<std::string>& Cifar10Classes();

/// The 24 MIRFlickr-25K annotation classes.
const std::vector<std::string>& MirFlickr24Classes();

/// Maps surface forms to a canonical concept name so that, e.g., CIFAR's
/// "automobile", COCO's "car" and NUS-WIDE's "cars" denote the same latent
/// semantic concept. Unknown names canonicalize to themselves
/// (lower-cased, spaces -> underscores).
std::string CanonicalConceptName(const std::string& name);

}  // namespace uhscm::data

#endif  // UHSCM_DATA_CONCEPTS_H_
