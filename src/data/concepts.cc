#include "data/concepts.h"

#include <unordered_map>

#include "common/string_util.h"

namespace uhscm::data {

const std::vector<std::string>& NusWide81Concepts() {
  static const auto* kList = new std::vector<std::string>{
      "airport",    "animal",    "beach",     "bear",      "birds",
      "boats",      "book",      "bridge",    "buildings", "cars",
      "castle",     "cat",       "cityscape", "clouds",    "computer",
      "coral",      "cow",       "dancing",   "dog",       "earthquake",
      "elk",        "fire",      "fish",      "flags",     "flowers",
      "food",       "fox",       "frost",     "garden",    "glacier",
      "grass",      "harbor",    "horses",    "house",     "lake",
      "leaf",       "map",       "military",  "moon",      "mountain",
      "nighttime",  "ocean",     "person",    "plane",     "plants",
      "police",     "protest",   "railroad",  "rainbow",   "reflection",
      "road",       "rocks",     "running",   "sand",      "sign",
      "sky",        "snow",      "soccer",    "sports",    "statue",
      "street",     "sun",       "sunset",    "surf",      "swimmers",
      "tattoo",     "temple",    "tiger",     "tower",     "town",
      "toy",        "train",     "tree",      "valley",    "vehicle",
      "water",      "waterfall", "wedding",   "whales",    "window",
      "zebra"};
  return *kList;
}

const std::vector<std::string>& NusWide21Classes() {
  static const auto* kList = new std::vector<std::string>{
      "animal",  "beach",      "buildings", "clouds", "flowers",
      "grass",   "lake",       "mountain",  "ocean",  "person",
      "plants",  "reflection", "road",      "rocks",  "sky",
      "snow",    "sunset",     "tree",      "vehicle", "water",
      "window"};
  return *kList;
}

const std::vector<std::string>& Coco80Concepts() {
  static const auto* kList = new std::vector<std::string>{
      "person",        "bicycle",      "car",           "motorcycle",
      "airplane",      "bus",          "train",         "truck",
      "boat",          "traffic light", "fire hydrant",  "stop sign",
      "parking meter", "bench",        "bird",          "cat",
      "dog",           "horse",        "sheep",         "cow",
      "elephant",      "bear",         "zebra",         "giraffe",
      "backpack",      "umbrella",     "handbag",       "tie",
      "suitcase",      "frisbee",      "skis",          "snowboard",
      "sports ball",   "kite",         "baseball bat",  "baseball glove",
      "skateboard",    "surfboard",    "tennis racket", "bottle",
      "wine glass",    "cup",          "fork",          "knife",
      "spoon",         "bowl",         "banana",        "apple",
      "sandwich",      "orange",       "broccoli",      "carrot",
      "hot dog",       "pizza",        "donut",         "cake",
      "chair",         "couch",        "potted plant",  "bed",
      "dining table",  "toilet",       "tv",            "laptop",
      "mouse",         "remote",       "keyboard",      "cell phone",
      "microwave",     "oven",         "toaster",       "sink",
      "refrigerator",  "book",         "clock",         "vase",
      "scissors",      "teddy bear",   "hair drier",    "toothbrush"};
  return *kList;
}

const std::vector<std::string>& Cifar10Classes() {
  static const auto* kList = new std::vector<std::string>{
      "airplane", "automobile", "bird",  "cat",  "deer",
      "dog",      "frog",       "horse", "ship", "truck"};
  return *kList;
}

const std::vector<std::string>& MirFlickr24Classes() {
  static const auto* kList = new std::vector<std::string>{
      "animals", "baby",       "bird",   "car",       "clouds",
      "dog",     "female",     "flower", "food",      "indoor",
      "lake",    "male",       "night",  "people",    "plant_life",
      "portrait", "river",     "sea",    "sky",       "structures",
      "sunset",  "transport",  "tree",   "water"};
  return *kList;
}

std::string CanonicalConceptName(const std::string& name) {
  static const auto* kSynonyms =
      new std::unordered_map<std::string, std::string>{
          // Plural / singular unification.
          {"birds", "bird"},
          {"horses", "horse"},
          {"boats", "boat"},
          {"cars", "car"},
          {"flowers", "flower"},
          {"whales", "whale"},
          {"plants", "plant"},
          {"animals", "animal"},
          {"people", "person"},
          {"rocks", "rock"},
          {"flags", "flag"},
          {"swimmers", "swimmer"},
          // Cross-dataset synonyms.
          {"airplane", "plane"},
          {"automobile", "car"},
          {"ship", "boat"},
          {"plant_life", "plant"},
          {"sea", "ocean"},
          {"transport", "vehicle"},
          {"structures", "buildings"},
          {"nighttime", "night"},
      };
  std::string key = ToLower(name);
  for (char& c : key) {
    if (c == ' ') c = '_';
  }
  auto it = kSynonyms->find(key);
  if (it != kSynonyms->end()) return it->second;
  return key;
}

}  // namespace uhscm::data
