#include "data/concept_vocab.h"

#include <set>

#include "common/status.h"
#include "data/concepts.h"

namespace uhscm::data {

namespace {
ConceptVocab FromNames(const std::vector<std::string>& names,
                       SemanticWorld* world) {
  ConceptVocab vocab;
  std::set<int> seen;
  for (const std::string& name : names) {
    const int id = world->RegisterConcept(name);
    if (seen.insert(id).second) {
      vocab.names.push_back(CanonicalConceptName(name));
      vocab.ids.push_back(id);
    }
  }
  return vocab;
}
}  // namespace

ConceptVocab MakeNusVocab(SemanticWorld* world) {
  return FromNames(NusWide81Concepts(), world);
}

ConceptVocab MakeCocoVocab(SemanticWorld* world) {
  return FromNames(Coco80Concepts(), world);
}

ConceptVocab MakeCombinedVocab(SemanticWorld* world) {
  std::vector<std::string> all = NusWide81Concepts();
  const std::vector<std::string>& coco = Coco80Concepts();
  all.insert(all.end(), coco.begin(), coco.end());
  return FromNames(all, world);
}

ConceptVocab SubsetVocab(const ConceptVocab& vocab,
                         const std::vector<int>& keep) {
  ConceptVocab out;
  for (int pos : keep) {
    UHSCM_CHECK(pos >= 0 && pos < vocab.size(),
                "SubsetVocab: position out of range");
    out.names.push_back(vocab.names[static_cast<size_t>(pos)]);
    out.ids.push_back(vocab.ids[static_cast<size_t>(pos)]);
  }
  return out;
}

}  // namespace uhscm::data
