#include "index/self_join.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "index/batch_scan.h"
#include "obs/kernel_counters.h"
#include "obs/metrics.h"

namespace uhscm::index {
namespace {

/// Flush bound for the buffered heap updates of an off-diagonal tile
/// task: candidates are staged lock-free and applied under the owning
/// tile's mutex in batches of at most this many, so a cold join (heaps
/// not yet full, nothing prunable) cannot stage O(tile^2) entries.
constexpr size_t kFlushCandidates = 8192;

/// Safe saturating "threshold + 1": the kernels prune at >= threshold,
/// but a pair at exactly the heap-front distance can still displace the
/// front on the id tie-break (tile mirroring delivers candidates out of
/// id order, unlike the ascending-id serving scan), so the join may only
/// prune pairs whose distance is *strictly* greater than every involved
/// front. Passing front+1 buys exactly that.
int32_t PlusOne(int32_t threshold) {
  return threshold >= kNoThreshold - 1 ? kNoThreshold : threshold + 1;
}

/// Per-call tile geometry plus live-row bookkeeping (prefix counts give
/// O(1) "live pairs in range" for the pruning counters).
struct TileMap {
  int n = 0;
  int tile = 0;
  int num_tiles = 0;
  const TombstoneSet* dead = nullptr;
  /// live_prefix[i] = live rows among [0, i).
  std::vector<int> live_prefix;

  TileMap(const PackedCodes& codes, const SelfJoinOptions& options) {
    n = codes.size();
    tile = codes.words_per_code() > 0
               ? PickCodeBlockSize(codes.words_per_code(), options.tile)
               : 1;
    num_tiles = n > 0 ? (n + tile - 1) / tile : 0;
    dead = options.tombstones;
    if (dead != nullptr && !dead->any()) dead = nullptr;
    live_prefix.resize(static_cast<size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i) {
      live_prefix[static_cast<size_t>(i) + 1] =
          live_prefix[static_cast<size_t>(i)] + (IsLive(i) ? 1 : 0);
    }
  }

  bool IsLive(int i) const { return dead == nullptr || !dead->Test(i); }
  int LiveIn(int lo, int hi) const {
    return live_prefix[static_cast<size_t>(hi)] -
           live_prefix[static_cast<size_t>(lo)];
  }
  int live() const { return live_prefix[static_cast<size_t>(n)]; }
  int TileBegin(int t) const { return t * tile; }
  int TileEnd(int t) const { return std::min(n, (t + 1) * tile); }
};

/// Work counters one task accumulates as plain ints and adds to the
/// join-wide atomics (and the obs registry) once when it finishes.
struct TaskCounters {
  int64_t pruned = 0;
  int64_t scored = 0;
};

struct JoinTotals {
  // Relaxed: independent work counters accumulated across tasks and
  // read only after the join's pool barrier, which orders them.
  std::atomic<int64_t> tiles{0};
  std::atomic<int64_t> pruned{0};
  std::atomic<int64_t> scored{0};

  void Absorb(const TaskCounters& task) {
    tiles.fetch_add(1, std::memory_order_relaxed);
    pruned.fetch_add(task.pruned, std::memory_order_relaxed);
    scored.fetch_add(task.scored, std::memory_order_relaxed);
  }
};

/// Records one stage duration into the registry's stage.* histograms
/// (the same namespace the serving tracer fills), so the bench's
/// stage_breakdown JSON works for joins too. No-op when the obs layer is
/// compiled out or runtime-disabled.
class StageTimer {
 public:
  explicit StageTimer(const char* name) : name_(name) {}
  ~StageTimer() {
    if constexpr (!obs::kObsCompiledIn) return;
    if (!obs::RuntimeEnabled()) return;
    const int64_t ns =
        static_cast<int64_t>(watch_.ElapsedSeconds() * 1e9);
    obs::MetricsRegistry::Global().GetHistogram(name_)->Record(ns);
  }

 private:
  const char* name_;
  Stopwatch watch_;
};

void FlushJoinCounters(const JoinTotals& totals) {
  obs::KernelCounters counters;
  counters.join_tiles = totals.tiles.load(std::memory_order_relaxed);
  counters.join_pairs_pruned = totals.pruned.load(std::memory_order_relaxed);
  counters.join_pairs_scored = totals.scored.load(std::memory_order_relaxed);
  counters.Flush();
}

/// All (I, J) tile pairs with I <= J, diagonals first: the diagonal task
/// is what fills a tile's heaps (arming every later threshold), so it
/// must not queue behind off-diagonal work that cannot prune yet.
std::vector<std::pair<int, int>> TilePairsDiagonalFirst(int num_tiles) {
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(num_tiles) *
                static_cast<size_t>(num_tiles + 1) / 2);
  for (int t = 0; t < num_tiles; ++t) pairs.emplace_back(t, t);
  for (int i = 0; i < num_tiles; ++i) {
    for (int j = i + 1; j < num_tiles; ++j) pairs.emplace_back(i, j);
  }
  return pairs;
}

// ------------------------------------------------------------- TopKJoin

/// Offers one candidate to a bounded max-heap under the full
/// (distance, id) order. Unlike the serving scan's strict-distance rule
/// (safe there because ids only ascend), the join's mirrored candidates
/// arrive out of id order, so an equal-distance smaller id must displace
/// the front. Keeping the exact k-smallest set makes the final sorted
/// list independent of arrival order — the byte-identity argument.
/// Updates *front_cache (INT32_MAX while the heap is filling).
void OfferNeighbor(std::vector<Neighbor>* heap, int k, Neighbor candidate,
                   int32_t* front_cache) {
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return NeighborLess(a, b);
  };
  if (static_cast<int>(heap->size()) < k) {
    heap->push_back(candidate);
    std::push_heap(heap->begin(), heap->end(), cmp);
  } else if (NeighborLess(candidate, heap->front())) {
    std::pop_heap(heap->begin(), heap->end(), cmp);
    heap->back() = candidate;
    std::push_heap(heap->begin(), heap->end(), cmp);
  } else {
    return;
  }
  if (static_cast<int>(heap->size()) == k) {
    *front_cache = heap->front().distance;
  }
}

/// Shared mutable state of one TopKJoin call. Heap i and fronts[i] are
/// owned by row i's tile: mutated only under tile_mu[i / tile]. Reads
/// from other tasks go through the same lock and are used only as
/// conservative (stale = larger) pruning bounds.
struct TopKState {
  int k = 0;
  std::vector<std::vector<Neighbor>> heaps;
  std::vector<int32_t> fronts;  // INT32_MAX until heap i holds k entries
  /// Plain std::mutex by design: a call-local stripe array (one lock
  /// per tile, sized at runtime), never held two at a time and never
  /// nested with any named lock in the serving hierarchy — the same
  /// exemption ParallelFor's completion latch gets.
  std::vector<std::mutex> tile_mu;

  TopKState(const TileMap& tiles, int k_eff)
      : k(k_eff),
        heaps(static_cast<size_t>(tiles.n)),
        fronts(static_cast<size_t>(tiles.n), INT32_MAX),
        tile_mu(static_cast<size_t>(std::max(1, tiles.num_tiles))) {
    for (int i = 0; i < tiles.n; ++i) {
      if (tiles.IsLive(i)) {
        heaps[static_cast<size_t>(i)].reserve(static_cast<size_t>(k));
      }
    }
  }
};

/// One staged heap update: candidate `nb` for row `row`.
struct StagedOffer {
  int row;
  Neighbor nb;
};

void ApplyOffers(TopKState* state, int tile_index,
                 std::vector<StagedOffer>* offers) {
  if (offers->empty()) return;
  std::lock_guard<std::mutex> lock(
      state->tile_mu[static_cast<size_t>(tile_index)]);
  for (const StagedOffer& offer : *offers) {
    OfferNeighbor(&state->heaps[static_cast<size_t>(offer.row)], state->k,
                  offer.nb, &state->fronts[static_cast<size_t>(offer.row)]);
  }
  offers->clear();
}

/// Diagonal tile task: rows [t0, t1) against each other, each unordered
/// pair once (row i scans the contiguous run [i+1, t1)). The task owns
/// every heap it touches, so offers apply directly against live fronts.
///
/// Pruning is decided at kDistChunk granularity against *per-chunk*
/// front maxima, not one tile-wide maximum: a single unlucky row with a
/// weak (large) front would otherwise disarm the chunk skip for the
/// whole tile. Chunk maxima are cached and recomputed lazily when an
/// offer shrinks a front inside the chunk; stale (larger) values are
/// conservative — they prune less, never wrongly.
void TopKDiagonalTile(const PackedCodes& codes, const TileMap& tiles,
                      BatchDistanceFn kernel, BatchDistanceMinFn fused_kernel,
                      bool fused, int t, TopKState* state,
                      TaskCounters* counters) {
  const int t0 = tiles.TileBegin(t);
  const int t1 = tiles.TileEnd(t);
  const int words = codes.words_per_code();
  std::lock_guard<std::mutex> lock(state->tile_mu[static_cast<size_t>(t)]);

  // Per-chunk max of live fronts over tile-local row chunks
  // [t0 + c*kDistChunk, ...), lazily refreshed via the dirty flags.
  const int nchunks = (t1 - t0 + kDistChunk - 1) / kDistChunk;
  std::vector<int32_t> chunk_max(static_cast<size_t>(nchunks), INT32_MAX);
  std::vector<char> dirty(static_cast<size_t>(nchunks), 1);
  auto chunk_front_max = [&](int c) {
    if (dirty[static_cast<size_t>(c)]) {
      const int lo = t0 + c * kDistChunk;
      const int hi = std::min(lo + kDistChunk, t1);
      int32_t m = INT32_MIN;
      for (int j = lo; j < hi; ++j) {
        if (tiles.IsLive(j)) {
          m = std::max(m, state->fronts[static_cast<size_t>(j)]);
        }
      }
      chunk_max[static_cast<size_t>(c)] = m;
      dirty[static_cast<size_t>(c)] = 0;
    }
    return chunk_max[static_cast<size_t>(c)];
  };

  std::vector<int32_t> dist(static_cast<size_t>(t1 - t0));
  for (int i = t0; i < t1 - 1; ++i) {
    if (!tiles.IsLive(i)) continue;
    const int count = t1 - i - 1;
    const int live_ahead = tiles.LiveIn(i + 1, t1);
    if (live_ahead == 0) break;  // no live candidate after i in this tile
    // Kernel-call threshold: a pair may be disposed early only if it can
    // enter *neither* endpoint's heap, so the call-wide bound is the max
    // front over row i and every chunk ahead of it, plus one for the id
    // tie-break. (The chunk containing i may include fronts of rows
    // behind i — a larger, still-conservative bound.)
    const int first_chunk = (i + 1 - t0) / kDistChunk;
    int32_t max_front = state->fronts[static_cast<size_t>(i)];
    for (int c = first_chunk; c < nchunks && max_front != INT32_MAX; ++c) {
      max_front = std::max(max_front, chunk_front_max(c));
    }
    const int32_t threshold =
        max_front == INT32_MAX ? kNoThreshold : PlusOne(max_front);
    int32_t block_min;
    if (fused) {
      block_min = fused_kernel(codes.code(i), codes.code(i + 1), count, words,
                               threshold, dist.data());
    } else {
      kernel(codes.code(i), codes.code(i + 1), count, words, threshold,
             dist.data());
      block_min = ChunkMin(dist.data(), 0, count);
    }
    if (threshold != kNoThreshold && block_min >= threshold) {
      counters->pruned += live_ahead;
      continue;
    }
    // Chunk walk aligned to the *tile's* chunk grid (row i + 1 usually
    // starts mid-chunk), so each dist range maps to one cached chunk
    // maximum. Fronts only shrink during the walk, so every T_c here is
    // <= the kernel-call threshold and distances below it are exact.
    int j = i + 1;
    while (j < t1) {
      const int c = (j - t0) / kDistChunk;
      const int chunk_end = std::min(t0 + (c + 1) * kDistChunk, t1);
      const int lo = j - (i + 1);
      const int hi = chunk_end - (i + 1);
      const int live_chunk = tiles.LiveIn(j, chunk_end);
      if (live_chunk == 0) {
        j = chunk_end;
        continue;
      }
      const int32_t front_i = state->fronts[static_cast<size_t>(i)];
      const int32_t cmax = std::max(front_i, chunk_front_max(c));
      const int32_t tc =
          cmax == INT32_MAX ? kNoThreshold : PlusOne(cmax);
      if (tc != kNoThreshold && ChunkMin(dist.data(), lo, hi) >= tc) {
        counters->pruned += live_chunk;
        j = chunk_end;
        continue;
      }
      counters->scored += live_chunk;
      const bool all_live = live_chunk == chunk_end - j;
      for (int jj = j; jj < chunk_end; ++jj) {
        if (!all_live && !tiles.IsLive(jj)) continue;
        const int32_t d = dist[static_cast<size_t>(jj - (i + 1))];
        if (d >= tc) continue;  // exact only below the threshold
        OfferNeighbor(&state->heaps[static_cast<size_t>(i)], state->k,
                      {jj, d}, &state->fronts[static_cast<size_t>(i)]);
        OfferNeighbor(&state->heaps[static_cast<size_t>(jj)], state->k,
                      {i, d}, &state->fronts[static_cast<size_t>(jj)]);
        dirty[static_cast<size_t>(c)] = 1;
      }
      j = chunk_end;
    }
    // Row i's own front shrank during its scan; refresh its chunk.
    dirty[static_cast<size_t>((i - t0) / kDistChunk)] = 1;
  }
}

/// Off-diagonal tile task (ti < tj): every row of tile ti scans tile
/// tj's contiguous codes once; each distance is offered to the query row
/// (tile ti side) and mirrored to the candidate row (tile tj side).
/// Front snapshots are taken under the owning tiles' locks; staleness is
/// conservative because fronts only shrink.
void TopKOffDiagonalTile(const PackedCodes& codes, const TileMap& tiles,
                         BatchDistanceFn kernel,
                         BatchDistanceMinFn fused_kernel, bool fused, int ti,
                         int tj, TopKState* state, TaskCounters* counters) {
  const int i0 = tiles.TileBegin(ti), i1 = tiles.TileEnd(ti);
  const int j0 = tiles.TileBegin(tj), j1 = tiles.TileEnd(tj);
  const int count = j1 - j0;
  const int live_j = tiles.LiveIn(j0, j1);
  if (live_j == 0 || tiles.LiveIn(i0, i1) == 0) return;
  const int words = codes.words_per_code();

  std::vector<int32_t> fronts_i(static_cast<size_t>(i1 - i0));
  std::vector<int32_t> fronts_j(static_cast<size_t>(count));
  {
    std::lock_guard<std::mutex> lock(
        state->tile_mu[static_cast<size_t>(ti)]);
    std::copy(state->fronts.begin() + i0, state->fronts.begin() + i1,
              fronts_i.begin());
  }
  {
    std::lock_guard<std::mutex> lock(
        state->tile_mu[static_cast<size_t>(tj)]);
    std::copy(state->fronts.begin() + j0, state->fronts.begin() + j1,
              fronts_j.begin());
  }
  // Per-chunk max of live mirror fronts (the dist buffer's chunk grid
  // aligns with tile tj's rows): chunk-granular thresholds keep the
  // chunk skip tight even when one row of the tile has a weak front.
  const int nchunks = (count + kDistChunk - 1) / kDistChunk;
  std::vector<int32_t> chunk_max(static_cast<size_t>(nchunks), INT32_MIN);
  int32_t max_front_j = INT32_MIN;
  for (int j = j0; j < j1; ++j) {
    if (tiles.IsLive(j)) {
      const int c = (j - j0) / kDistChunk;
      chunk_max[static_cast<size_t>(c)] =
          std::max(chunk_max[static_cast<size_t>(c)],
                   fronts_j[static_cast<size_t>(j - j0)]);
    }
  }
  for (const int32_t m : chunk_max) max_front_j = std::max(max_front_j, m);

  std::vector<int32_t> dist(static_cast<size_t>(count));
  std::vector<StagedOffer> query_side, mirror_side;
  for (int i = i0; i < i1; ++i) {
    if (!tiles.IsLive(i)) continue;
    const int32_t front_i = fronts_i[static_cast<size_t>(i - i0)];
    const int32_t max_front = std::max(front_i, max_front_j);
    const int32_t threshold =
        max_front == INT32_MAX ? kNoThreshold : PlusOne(max_front);
    int32_t block_min;
    if (fused) {
      block_min = fused_kernel(codes.code(i), codes.code(j0), count, words,
                               threshold, dist.data());
    } else {
      kernel(codes.code(i), codes.code(j0), count, words, threshold,
             dist.data());
      block_min = ChunkMin(dist.data(), 0, count);
    }
    if (threshold != kNoThreshold && block_min >= threshold) {
      counters->pruned += live_j;
      continue;
    }
    for (int c0 = 0; c0 < count; c0 += kDistChunk) {
      const int c1 = std::min(c0 + kDistChunk, count);
      const int live_chunk = tiles.LiveIn(j0 + c0, j0 + c1);
      if (live_chunk == 0) continue;
      // Chunk threshold: only row i and this chunk's mirror rows can
      // accept a pair from this range.
      const int32_t cmax =
          std::max(front_i, chunk_max[static_cast<size_t>(c0 / kDistChunk)]);
      const int32_t tc = cmax == INT32_MAX ? kNoThreshold : PlusOne(cmax);
      if (tc != kNoThreshold && ChunkMin(dist.data(), c0, c1) >= tc) {
        counters->pruned += live_chunk;
        continue;
      }
      counters->scored += live_chunk;
      const bool all_live = live_chunk == c1 - c0;
      for (int c = c0; c < c1; ++c) {
        const int j = j0 + c;
        if (!all_live && !tiles.IsLive(j)) continue;
        const int32_t d = dist[static_cast<size_t>(c)];
        if (d >= tc) continue;  // exact only below the threshold
        // Stage only candidates the snapshot fronts cannot already rule
        // out (<= keeps equal-distance ties — the id tie-break is decided
        // by the live heap under the lock).
        if (d <= front_i) query_side.push_back({i, {j, d}});
        if (d <= fronts_j[static_cast<size_t>(c)]) {
          mirror_side.push_back({j, {i, d}});
        }
      }
    }
    if (query_side.size() + mirror_side.size() >= kFlushCandidates) {
      ApplyOffers(state, ti, &query_side);
      ApplyOffers(state, tj, &mirror_side);
    }
  }
  ApplyOffers(state, ti, &query_side);
  ApplyOffers(state, tj, &mirror_side);
}

// ----------------------------------------------------------- RadiusJoin

/// One tile-pair task of a radius join: emits every qualifying live pair
/// of the (ti, tj) tile rectangle (diagonal tiles scan the strict upper
/// triangle) into `out`, in (a, b) order within the task.
void RadiusTileTask(const PackedCodes& codes, const TileMap& tiles,
                    BatchDistanceFn kernel, BatchDistanceMinFn fused_kernel,
                    bool fused, int radius, int ti, int tj,
                    std::vector<JoinPair>* out, TaskCounters* counters) {
  const int i0 = tiles.TileBegin(ti), i1 = tiles.TileEnd(ti);
  const int j0 = tiles.TileBegin(tj), j1 = tiles.TileEnd(tj);
  if (tiles.LiveIn(i0, i1) == 0 || tiles.LiveIn(j0, j1) == 0) return;
  const int words = codes.words_per_code();
  const int32_t threshold = PlusOne(radius);
  std::vector<int32_t> dist(static_cast<size_t>(j1 - j0));
  for (int i = i0; i < i1; ++i) {
    if (!tiles.IsLive(i)) continue;
    const int start = ti == tj ? i + 1 : j0;  // each unordered pair once
    const int count = j1 - start;
    if (count <= 0) continue;
    const int live_range = tiles.LiveIn(start, j1);
    if (live_range == 0) continue;
    int32_t block_min;
    if (fused) {
      block_min = fused_kernel(codes.code(i), codes.code(start), count, words,
                               threshold, dist.data());
    } else {
      kernel(codes.code(i), codes.code(start), count, words, threshold,
             dist.data());
      block_min = ChunkMin(dist.data(), 0, count);
    }
    if (block_min > radius) {
      counters->pruned += live_range;
      continue;
    }
    for (int c0 = 0; c0 < count; c0 += kDistChunk) {
      const int c1 = std::min(c0 + kDistChunk, count);
      const int live_chunk = tiles.LiveIn(start + c0, start + c1);
      if (live_chunk == 0) continue;
      if (ChunkMin(dist.data(), c0, c1) > radius) {
        counters->pruned += live_chunk;
        continue;
      }
      counters->scored += live_chunk;
      const bool all_live = live_chunk == c1 - c0;
      for (int c = c0; c < c1; ++c) {
        const int j = start + c;
        if (!all_live && !tiles.IsLive(j)) continue;
        const int32_t d = dist[static_cast<size_t>(c)];
        if (d <= radius) out->push_back({i, j, d});
      }
    }
  }
}

}  // namespace

std::vector<std::vector<Neighbor>> TopKJoin(const PackedCodes& codes, int k,
                                            const SelfJoinOptions& options,
                                            SelfJoinStats* stats) {
  Stopwatch watch;
  const TileMap tiles(codes, options);
  const int live = tiles.live();
  SelfJoinStats local;
  local.pairs_total =
      static_cast<int64_t>(live) * (live - 1) / 2;
  std::vector<std::vector<Neighbor>> results(
      static_cast<size_t>(std::max(0, tiles.n)));
  // Self excluded, so a live row has at most live-1 neighbors; clamping
  // (like the batched scan clamps to the live count) lets heaps actually
  // fill, arming the pruning thresholds.
  k = std::min(k, live - 1);
  if (k <= 0 || tiles.n <= 0) {
    if (stats != nullptr) {
      local.seconds = watch.ElapsedSeconds();
      *stats = local;
    }
    return results;
  }

  const BatchDistanceFn kernel = options.force_tier
                                     ? GetBatchDistanceFn(options.tier)
                                     : GetBatchDistanceFn();
  const BatchDistanceMinFn fused_kernel =
      options.force_tier ? GetBatchDistanceMinFn(options.tier)
                         : GetBatchDistanceMinFn();

  TopKState state(tiles, k);
  JoinTotals totals;
  ThreadPool pool(options.threads);
  {
    StageTimer timer("stage.join_scan_ns");
    // Diagonal tiles first, as their own parallel phase: they fill every
    // row's heap (a tile holds up to `tile` rows, usually >> k), so by
    // the time the off-diagonal rectangles run, the pruning thresholds
    // are armed corpus-wide.
    pool.ParallelFor(tiles.num_tiles, [&](int t) {
      TaskCounters counters;
      TopKDiagonalTile(codes, tiles, kernel, fused_kernel, options.fused_min,
                       t, &state, &counters);
      totals.Absorb(counters);
    });
    const std::vector<std::pair<int, int>> pairs =
        TilePairsDiagonalFirst(tiles.num_tiles);
    const int num_off = static_cast<int>(pairs.size()) - tiles.num_tiles;
    pool.ParallelFor(num_off, [&](int task) {
      const auto [ti, tj] =
          pairs[static_cast<size_t>(tiles.num_tiles + task)];
      TaskCounters counters;
      TopKOffDiagonalTile(codes, tiles, kernel, fused_kernel,
                          options.fused_min, ti, tj, &state, &counters);
      totals.Absorb(counters);
    });
  }
  {
    StageTimer timer("stage.join_merge_ns");
    auto cmp = [](const Neighbor& a, const Neighbor& b) {
      return NeighborLess(a, b);
    };
    for (auto& heap : state.heaps) std::sort_heap(heap.begin(), heap.end(), cmp);
    results = std::move(state.heaps);
  }

  FlushJoinCounters(totals);
  local.tiles = totals.tiles.load(std::memory_order_relaxed);
  local.pairs_pruned = totals.pruned.load(std::memory_order_relaxed);
  local.pairs_scored = totals.scored.load(std::memory_order_relaxed);
  local.seconds = watch.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return results;
}

std::vector<JoinPair> RadiusJoin(const PackedCodes& codes, int radius,
                                 const SelfJoinOptions& options,
                                 SelfJoinStats* stats) {
  Stopwatch watch;
  const TileMap tiles(codes, options);
  const int live = tiles.live();
  SelfJoinStats local;
  local.pairs_total = static_cast<int64_t>(live) * (live - 1) / 2;
  std::vector<JoinPair> result;
  if (radius < 0 || live < 2) {
    if (stats != nullptr) {
      local.seconds = watch.ElapsedSeconds();
      *stats = local;
    }
    return result;
  }

  const BatchDistanceFn kernel = options.force_tier
                                     ? GetBatchDistanceFn(options.tier)
                                     : GetBatchDistanceFn();
  const BatchDistanceMinFn fused_kernel =
      options.force_tier ? GetBatchDistanceMinFn(options.tier)
                         : GetBatchDistanceMinFn();

  const std::vector<std::pair<int, int>> pairs =
      TilePairsDiagonalFirst(tiles.num_tiles);
  std::vector<std::vector<JoinPair>> per_task(pairs.size());
  JoinTotals totals;
  ThreadPool pool(options.threads);
  {
    StageTimer timer("stage.join_scan_ns");
    pool.ParallelFor(static_cast<int>(pairs.size()), [&](int task) {
      const auto [ti, tj] = pairs[static_cast<size_t>(task)];
      TaskCounters counters;
      RadiusTileTask(codes, tiles, kernel, fused_kernel, options.fused_min,
                     radius, ti, tj, &per_task[static_cast<size_t>(task)],
                     &counters);
      totals.Absorb(counters);
    });
  }
  {
    StageTimer timer("stage.join_merge_ns");
    size_t total = 0;
    for (const auto& chunk : per_task) total += chunk.size();
    result.reserve(total);
    for (auto& chunk : per_task) {
      result.insert(result.end(), chunk.begin(), chunk.end());
    }
    // Tasks emit (a, b)-sorted chunks; one global sort makes the output
    // canonical regardless of tile size or scheduling.
    std::sort(result.begin(), result.end(), JoinPairLess);
  }

  FlushJoinCounters(totals);
  local.tiles = totals.tiles.load(std::memory_order_relaxed);
  local.pairs_pruned = totals.pruned.load(std::memory_order_relaxed);
  local.pairs_scored = totals.scored.load(std::memory_order_relaxed);
  local.seconds = watch.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return result;
}

// ------------------------------------------------------------ reducers

namespace {

/// Deterministic union-find over sparse row ids (path halving + union by
/// smaller root, so every component's root is its smallest member).
class UnionFind {
 public:
  int Find(int x) {
    auto [it, inserted] = parent_.try_emplace(x, x);
    int root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const int next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    (void)it;
    (void)inserted;
    return root;
  }

  void Union(int a, int b) {
    const int ra = Find(a), rb = Find(b);
    if (ra == rb) return;
    // Smaller id wins the root, so the representative of a finished
    // component is always its smallest member.
    if (ra < rb) {
      parent_[rb] = ra;
    } else {
      parent_[ra] = rb;
    }
  }

  const std::map<int, int>& nodes() const { return parent_; }

 private:
  std::map<int, int> parent_;
};

}  // namespace

DedupGroupsResult ReducePairsToGroups(const std::vector<JoinPair>& pairs,
                                      DedupLink link) {
  DedupGroupsResult result;
  // Best within-radius match per participating row, under the canonical
  // (distance, id) order. Whenever a row's global nearest neighbor is
  // within the radius, this equals it (the global best is the minimum).
  std::map<int, Neighbor> best;
  auto offer = [&best](int row, Neighbor nb) {
    auto [it, inserted] = best.try_emplace(row, nb);
    if (!inserted && NeighborLess(nb, it->second)) it->second = nb;
  };
  for (const JoinPair& pair : pairs) {
    offer(pair.a, {pair.b, pair.distance});
    offer(pair.b, {pair.a, pair.distance});
  }
  for (const JoinPair& pair : pairs) {
    const auto a = best.find(pair.a);
    const auto b = best.find(pair.b);
    if (a->second.id == pair.b && b->second.id == pair.a) {
      result.reciprocal_pairs.push_back(pair);  // pairs is (a, b)-sorted
    }
  }

  UnionFind uf;
  if (link == DedupLink::kRadius) {
    for (const JoinPair& pair : pairs) uf.Union(pair.a, pair.b);
  } else {
    for (const JoinPair& pair : result.reciprocal_pairs) {
      uf.Union(pair.a, pair.b);
    }
  }
  std::map<int, std::vector<int>> components;
  for (const auto& [row, unused] : uf.nodes()) {
    (void)unused;
    components[uf.Find(row)].push_back(row);
  }
  for (auto& [root, members] : components) {
    (void)root;
    if (members.size() < 2) continue;  // isolated Find() artifacts
    std::sort(members.begin(), members.end());
    result.rows_clustered += static_cast<int64_t>(members.size());
    result.groups.push_back(std::move(members));
  }
  // std::map iteration gives groups sorted by root == smallest member.
  return result;
}

DedupGroupsResult DedupGroups(const PackedCodes& codes,
                              const DedupOptions& dedup,
                              const SelfJoinOptions& options) {
  SelfJoinStats stats;
  const std::vector<JoinPair> pairs =
      RadiusJoin(codes, dedup.radius, options, &stats);
  StageTimer timer("stage.join_reduce_ns");
  DedupGroupsResult result = ReducePairsToGroups(pairs, dedup.link);
  result.join = stats;
  return result;
}

// ---------------------------------------------------------- references

std::vector<std::vector<Neighbor>> ReferenceTopKJoin(
    const PackedCodes& codes, int k, const TombstoneSet* tombstones) {
  const int n = codes.size();
  const int words = codes.words_per_code();
  const TombstoneSet* dead =
      tombstones != nullptr && tombstones->any() ? tombstones : nullptr;
  auto live = [dead](int i) { return dead == nullptr || !dead->Test(i); };
  int live_count = 0;
  for (int i = 0; i < n; ++i) live_count += live(i) ? 1 : 0;
  std::vector<std::vector<Neighbor>> results(static_cast<size_t>(n));
  k = std::min(k, live_count - 1);
  if (k <= 0) return results;
  std::vector<int32_t> fronts(static_cast<size_t>(n), INT32_MAX);
  for (int i = 0; i < n; ++i) {
    if (!live(i)) continue;
    for (int j = i + 1; j < n; ++j) {
      if (!live(j)) continue;
      const int d = HammingDistance(codes.code(i), codes.code(j), words);
      OfferNeighbor(&results[static_cast<size_t>(i)], k, {j, d},
                    &fronts[static_cast<size_t>(i)]);
      OfferNeighbor(&results[static_cast<size_t>(j)], k, {i, d},
                    &fronts[static_cast<size_t>(j)]);
    }
  }
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return NeighborLess(a, b);
  };
  for (auto& heap : results) std::sort_heap(heap.begin(), heap.end(), cmp);
  return results;
}

std::vector<JoinPair> ReferenceRadiusJoin(const PackedCodes& codes, int radius,
                                          const TombstoneSet* tombstones) {
  const int n = codes.size();
  const int words = codes.words_per_code();
  const TombstoneSet* dead =
      tombstones != nullptr && tombstones->any() ? tombstones : nullptr;
  auto live = [dead](int i) { return dead == nullptr || !dead->Test(i); };
  std::vector<JoinPair> result;
  if (radius < 0) return result;
  for (int i = 0; i < n; ++i) {
    if (!live(i)) continue;
    for (int j = i + 1; j < n; ++j) {
      if (!live(j)) continue;
      const int d = HammingDistance(codes.code(i), codes.code(j), words);
      if (d <= radius) result.push_back({i, j, d});
    }
  }
  return result;
}

}  // namespace uhscm::index
