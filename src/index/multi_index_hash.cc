#include "index/multi_index_hash.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "obs/kernel_counters.h"

namespace uhscm::index {

MultiIndexHashTable::MultiIndexHashTable(PackedCodes database,
                                         int num_substrings)
    : database_(std::move(database)) {
  const int bits = database_.bits();
  UHSCM_CHECK(bits > 0, "MultiIndexHashTable: empty codes");
  if (num_substrings <= 0) {
    // s ~= bits / log2(n) keeps tables selective; clamp to [1, bits/8].
    const double n = std::max(2, database_.size());
    num_substrings = static_cast<int>(
        std::round(static_cast<double>(bits) / std::log2(n)));
    num_substrings = std::clamp(num_substrings, 1, std::max(1, bits / 8));
  }
  num_substrings_ = std::min(num_substrings, bits);
  substring_bits_ = (bits + num_substrings_ - 1) / num_substrings_;
  UHSCM_CHECK(substring_bits_ <= 63,
              "MultiIndexHashTable: substring too wide; raise num_substrings");

  tombstones_.Resize(database_.size());
  tables_.resize(static_cast<size_t>(num_substrings_));
  IndexRows(0, database_.size());
}

void MultiIndexHashTable::IndexRows(int begin, int end) {
  for (int i = begin; i < end; ++i) {
    for (int s = 0; s < num_substrings_; ++s) {
      tables_[static_cast<size_t>(s)][ExtractSubstring(database_.code(i), s)]
          .push_back(i);
    }
  }
}

void MultiIndexHashTable::Append(const PackedCodes& batch) {
  const int begin = database_.size();
  database_.Append(batch);
  tombstones_.Resize(database_.size());
  IndexRows(begin, database_.size());
}

bool MultiIndexHashTable::Remove(int id) {
  if (id < 0 || id >= database_.size()) return false;
  return tombstones_.Set(id);
}

std::unique_ptr<ShardIndex> MultiIndexHashTable::Compact() const {
  return std::make_unique<MultiIndexHashTable>(
      CompactLiveRows(database_, tombstones_), num_substrings_);
}

uint64_t MultiIndexHashTable::ExtractSubstring(const uint64_t* code,
                                               int s) const {
  const int begin = s * substring_bits_;
  const int end = std::min(begin + substring_bits_, database_.bits());
  uint64_t value = 0;
  for (int b = begin; b < end; ++b) {
    const uint64_t bit = (code[b >> 6] >> (b & 63)) & 1ULL;
    value |= bit << (b - begin);
  }
  return value;
}

void MultiIndexHashTable::EnumerateNeighbors(
    uint64_t value, int width, int radius, int first_bit, int table,
    std::vector<int>* candidates) const {
  auto it = tables_[static_cast<size_t>(table)].find(value);
  if (it != tables_[static_cast<size_t>(table)].end()) {
    candidates->insert(candidates->end(), it->second.begin(),
                       it->second.end());
  }
  if (radius == 0) return;
  for (int b = first_bit; b < width; ++b) {
    EnumerateNeighbors(value ^ (1ULL << b), width, radius - 1, b + 1, table,
                       candidates);
  }
}

std::vector<Neighbor> MultiIndexHashTable::WithinRadius(const uint64_t* query,
                                                        int r) const {
  // Pigeonhole: a code at distance <= r matches some substring within
  // floor(r / s).
  const int sub_radius = r / num_substrings_;
  std::vector<int> candidates;
  for (int s = 0; s < num_substrings_; ++s) {
    const int begin = s * substring_bits_;
    const int end = std::min(begin + substring_bits_, database_.bits());
    const int width = end - begin;
    // Enumerating C(width, <= sub_radius) patterns blows up for large
    // radii — fall back to scanning this table's full contents if the
    // enumeration would exceed the database size.
    double patterns = 1.0;
    double choose = 1.0;
    for (int d = 1; d <= sub_radius; ++d) {
      choose = choose * (width - d + 1) / d;
      patterns += choose;
    }
    if (patterns > static_cast<double>(database_.size())) {
      for (int i = 0; i < database_.size(); ++i) candidates.push_back(i);
      break;
    }
    uint64_t qsub = 0;
    for (int b = begin; b < end; ++b) {
      const uint64_t bit = (query[b >> 6] >> (b & 63)) & 1ULL;
      qsub |= bit << (b - begin);
    }
    EnumerateNeighbors(qsub, width, sub_radius, 0, s, &candidates);
  }
  // Probed counts raw table hits (pre-dedup — the bucket traffic the
  // probe pattern generated); verified counts exact distance checks on
  // the surviving unique candidates.
  obs::KernelCounters counters;
  counters.mih_candidates_probed += static_cast<int64_t>(candidates.size());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const bool dead_rows = tombstones_.any();
  std::vector<Neighbor> out;
  for (int id : candidates) {
    if (dead_rows && tombstones_.Test(id)) continue;
    counters.mih_candidates_verified += 1;
    const int d = database_.DistanceTo(id, query);
    if (d <= r) out.push_back({id, d});
  }
  counters.Flush();
  return out;
}

std::vector<Neighbor> MultiIndexHashTable::TopK(const uint64_t* query,
                                                int k) const {
  k = std::min(k, size());
  if (k <= 0) return {};
  const int code_bits = bits();
  int radius = std::max(1, code_bits / 16);
  std::vector<Neighbor> hits;
  for (;;) {
    hits = WithinRadius(query, radius);
    if (static_cast<int>(hits.size()) >= k || radius >= code_bits) break;
    radius = std::min(code_bits, radius * 2);
  }
  std::sort(hits.begin(), hits.end(), NeighborLess);
  hits.resize(static_cast<size_t>(std::min<int>(k, hits.size())));
  return hits;
}

std::vector<std::vector<Neighbor>> MultiIndexHashTable::TopKBatch(
    const uint64_t* const* queries, int num_queries, int k) const {
  std::vector<std::vector<Neighbor>> results(
      static_cast<size_t>(std::max(0, num_queries)));
  for (int q = 0; q < num_queries; ++q) {
    results[static_cast<size_t>(q)] = TopK(queries[q], k);
  }
  return results;
}

}  // namespace uhscm::index
