#include "index/packed_codes.h"

#include <algorithm>
#include <bit>

#include "common/status.h"

namespace uhscm::index {
namespace {

inline int Popcount64(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(x);
#else
  return std::popcount(x);
#endif
}

}  // namespace

int HammingDistance(const uint64_t* a, const uint64_t* b, int words) {
  // Four independent accumulators break the popcount dependency chain so
  // the loop saturates the popcnt ports instead of serializing on one sum.
  int d0 = 0, d1 = 0, d2 = 0, d3 = 0;
  int w = 0;
  for (; w + 4 <= words; w += 4) {
    d0 += Popcount64(a[w] ^ b[w]);
    d1 += Popcount64(a[w + 1] ^ b[w + 1]);
    d2 += Popcount64(a[w + 2] ^ b[w + 2]);
    d3 += Popcount64(a[w + 3] ^ b[w + 3]);
  }
  for (; w < words; ++w) {
    d0 += Popcount64(a[w] ^ b[w]);
  }
  return d0 + d1 + d2 + d3;
}

PackedCodes PackedCodes::FromSignMatrix(const linalg::Matrix& codes) {
  PackedCodes packed;
  packed.num_codes_ = codes.rows();
  packed.bits_ = codes.cols();
  packed.words_per_code_ = (codes.cols() + 63) / 64;
  packed.words_.assign(
      static_cast<size_t>(packed.num_codes_) * packed.words_per_code_, 0);
  const int bits = codes.cols();
  for (int i = 0; i < codes.rows(); ++i) {
    const float* row = codes.Row(i);
    uint64_t* dst =
        packed.words_.data() +
        static_cast<size_t>(i) * packed.words_per_code_;
    // Build each word in a register and store it once, instead of a
    // read-modify-write of the output word per bit.
    for (int w = 0; w < packed.words_per_code_; ++w) {
      const int base = w << 6;
      const int end = std::min(base + 64, bits);
      uint64_t word = 0;
      for (int b = base; b < end; ++b) {
        word |= static_cast<uint64_t>(row[b] > 0.0f) << (b - base);
      }
      dst[w] = word;
    }
  }
  return packed;
}

PackedCodes PackedCodes::FromRawWords(int num_codes, int bits,
                                      std::vector<uint64_t> words) {
  PackedCodes packed;
  packed.num_codes_ = num_codes;
  packed.bits_ = bits;
  packed.words_per_code_ = (bits + 63) / 64;
  UHSCM_CHECK(words.size() == static_cast<size_t>(num_codes) *
                                  static_cast<size_t>(packed.words_per_code_),
              "FromRawWords: word buffer size mismatch");
  packed.words_ = std::move(words);
  return packed;
}

void PackedCodes::Append(const PackedCodes& other) {
  if (other.num_codes_ == 0) return;
  if (num_codes_ == 0 && bits_ == 0) {
    *this = other;
    return;
  }
  UHSCM_CHECK(other.bits_ == bits_,
              "PackedCodes::Append: bit width mismatch");
  words_.insert(words_.end(), other.words_.begin(), other.words_.end());
  num_codes_ += other.num_codes_;
}

int PackedCodes::Distance(int i, int j) const {
  UHSCM_CHECK(i >= 0 && i < num_codes_ && j >= 0 && j < num_codes_,
              "PackedCodes::Distance: index out of range");
  return HammingDistance(code(i), code(j), words_per_code_);
}

int PackedCodes::DistanceTo(int i, const uint64_t* other) const {
  UHSCM_CHECK(i >= 0 && i < num_codes_,
              "PackedCodes::DistanceTo: index out of range");
  return HammingDistance(code(i), other, words_per_code_);
}

std::vector<float> PackedCodes::Unpack(int i) const {
  UHSCM_CHECK(i >= 0 && i < num_codes_,
              "PackedCodes::Unpack: index out of range");
  std::vector<float> out(static_cast<size_t>(bits_));
  const uint64_t* src = code(i);
  for (int b = 0; b < bits_; ++b) {
    out[static_cast<size_t>(b)] =
        (src[b >> 6] >> (b & 63)) & 1ULL ? 1.0f : -1.0f;
  }
  return out;
}

}  // namespace uhscm::index
