#ifndef UHSCM_INDEX_SHARD_INDEX_H_
#define UHSCM_INDEX_SHARD_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "index/neighbor.h"
#include "index/packed_codes.h"

namespace uhscm::index {

/// \brief Deletion bitmap over a code database.
///
/// Removed rows keep their id and their packed words; they are simply
/// skipped by every scan and verification loop. Id stability is what lets
/// a mutable index stay byte-identical (after id compaction) to a fresh
/// rebuild of the surviving rows: survivors keep their relative order, and
/// the (distance, id) tie-break only depends on that order.
class TombstoneSet {
 public:
  TombstoneSet() = default;

  /// Rebuilds from a serialized bitmap (snapshot load). `words` must hold
  /// ceil(n/64) entries; bits at positions >= n are ignored.
  static TombstoneSet FromWords(int n, const std::vector<uint64_t>& words);

  /// Grows the bitmap to cover `n` rows; new rows start live. Never
  /// shrinks.
  void Resize(int n);

  int size() const { return size_; }
  int dead_count() const { return dead_count_; }
  bool any() const { return dead_count_ > 0; }

  bool Test(int i) const {
    return (words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1ULL;
  }

  /// Marks row i dead. Returns false when it was already dead.
  bool Set(int i);

  /// Raw bitmap, ceil(size/64) words (serialization path).
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  int size_ = 0;
  int dead_count_ = 0;
  std::vector<uint64_t> words_;
};

inline TombstoneSet TombstoneSet::FromWords(int n,
                                            const std::vector<uint64_t>& words) {
  TombstoneSet set;
  set.Resize(n);
  const size_t count =
      words.size() < set.words_.size() ? words.size() : set.words_.size();
  for (size_t w = 0; w < count; ++w) set.words_[w] = words[w];
  // Clear any bits beyond the last row so dead_count stays exact.
  if (n & 63) set.words_.back() &= (1ULL << (n & 63)) - 1;
  set.dead_count_ = 0;
  for (uint64_t w : set.words_) {
    set.dead_count_ += __builtin_popcountll(w);
  }
  return set;
}

inline void TombstoneSet::Resize(int n) {
  if (n > size_) {
    size_ = n;
    words_.resize(static_cast<size_t>((n + 63) / 64), 0);
  }
}

inline bool TombstoneSet::Set(int i) {
  uint64_t& word = words_[static_cast<size_t>(i >> 6)];
  const uint64_t mask = 1ULL << (i & 63);
  if (word & mask) return false;
  word |= mask;
  ++dead_count_;
  return true;
}

/// \brief The common contract of a mutable single-shard retrieval index.
///
/// Both LinearScanIndex and MultiIndexHashTable implement it, so
/// serve::ShardedIndex composes shards through one seam instead of
/// branching on the backend. Ids are shard-local append order: the first
/// appended code after an N-row build gets id N, and Remove never
/// reassigns ids. All query methods see exactly the live rows — results
/// are byte-identical (after id compaction) to a fresh build over the
/// surviving rows.
///
/// Thread safety: query methods are const and safe to call concurrently
/// with each other; Append/Remove require external exclusion against
/// queries (serve::ShardedIndex holds a per-shard reader/writer lock).
class ShardIndex {
 public:
  virtual ~ShardIndex() = default;

  /// Live (non-tombstoned) rows.
  virtual int size() const = 0;
  /// All rows ever appended, including tombstoned ones.
  virtual int total_size() const = 0;
  virtual int bits() const = 0;

  virtual const PackedCodes& codes() const = 0;
  virtual const TombstoneSet& tombstones() const = 0;

  /// Top-k live rows by (distance, id). k is clamped to size().
  virtual std::vector<Neighbor> TopK(const uint64_t* query, int k) const = 0;

  /// Batched TopK: one list per query, each byte-identical to the
  /// per-query call.
  virtual std::vector<std::vector<Neighbor>> TopKBatch(
      const uint64_t* const* queries, int num_queries, int k) const = 0;

  /// Appends `batch` (same bit width) after the current rows; the new
  /// rows take ids total_size() .. total_size() + batch.size() - 1.
  virtual void Append(const PackedCodes& batch) = 0;

  /// Tombstones row `id`. Returns false when out of range or already
  /// dead.
  virtual bool Remove(int id) = 0;

  /// Builds a fresh index of the same kind over the live rows only —
  /// the rebuild half of the compaction protocol. Survivors keep their
  /// relative order, so the new index's local id of an old survivor is
  /// its rank among the survivors; queries against the compacted index
  /// are byte-identical to this index after that rank remap. Const (and
  /// safe to run concurrently with query methods): the caller swaps the
  /// result in under its own writer lock.
  virtual std::unique_ptr<ShardIndex> Compact() const = 0;
};

/// Copies the live rows of `codes` (those not set in `dead`) into a
/// fresh PackedCodes, preserving order — the survivor copy both
/// Compact() implementations start from.
inline PackedCodes CompactLiveRows(const PackedCodes& codes,
                                   const TombstoneSet& dead) {
  const int words_per_code = codes.words_per_code();
  const int live = codes.size() - dead.dead_count();
  std::vector<uint64_t> words;
  words.reserve(static_cast<size_t>(live) * words_per_code);
  for (int i = 0; i < codes.size(); ++i) {
    if (dead.Test(i)) continue;
    const uint64_t* src = codes.code(i);
    words.insert(words.end(), src, src + words_per_code);
  }
  return PackedCodes::FromRawWords(live, codes.bits(), std::move(words));
}

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_SHARD_INDEX_H_
