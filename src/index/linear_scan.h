#ifndef UHSCM_INDEX_LINEAR_SCAN_H_
#define UHSCM_INDEX_LINEAR_SCAN_H_

#include <vector>

#include "index/packed_codes.h"

namespace uhscm::index {

/// One retrieval hit: database position + Hamming distance.
struct Neighbor {
  int id;
  int distance;
};

/// \brief Exact Hamming-ranking retrieval by brute-force popcount scan.
///
/// This is the Hamming-ranking protocol of §4.2: all database codes are
/// ranked by distance to the query (ties broken by database id, matching
/// the deterministic tie-breaking the evaluation metrics assume).
class LinearScanIndex {
 public:
  /// Takes ownership of the packed database codes.
  explicit LinearScanIndex(PackedCodes database);

  int size() const { return database_.size(); }
  int bits() const { return database_.bits(); }
  const PackedCodes& database() const { return database_; }

  /// Top-k nearest database codes to the packed query (ascending
  /// distance, then ascending id). k is clamped to the database size.
  std::vector<Neighbor> TopK(const uint64_t* query, int k) const;

  /// Batched top-k: one result list per query, each byte-identical to the
  /// corresponding TopK call. Routes through the cache-blocked SIMD scan
  /// (index/batch_scan.h), which reads each corpus block once per batch
  /// instead of once per query — the serving hot path.
  std::vector<std::vector<Neighbor>> TopKBatch(const uint64_t* const* queries,
                                               int num_queries, int k) const;
  std::vector<std::vector<Neighbor>> TopKBatch(const PackedCodes& queries,
                                               int k) const;

  /// Distances from the query to every database code (used to build PR
  /// curves over all Hamming radii in one pass).
  std::vector<int> AllDistances(const uint64_t* query) const;

  /// All database codes within Hamming radius r (ascending id).
  std::vector<Neighbor> WithinRadius(const uint64_t* query, int r) const;

 private:
  PackedCodes database_;
};

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_LINEAR_SCAN_H_
