#ifndef UHSCM_INDEX_LINEAR_SCAN_H_
#define UHSCM_INDEX_LINEAR_SCAN_H_

#include <vector>

#include "index/neighbor.h"
#include "index/packed_codes.h"
#include "index/shard_index.h"

namespace uhscm::index {

/// \brief Exact Hamming-ranking retrieval by brute-force popcount scan.
///
/// This is the Hamming-ranking protocol of §4.2: all database codes are
/// ranked by distance to the query (ties broken by database id, matching
/// the deterministic tie-breaking the evaluation metrics assume).
///
/// The index is mutable through the ShardIndex seam: Append adds rows at
/// the end (ids keep ascending) and Remove tombstones a row, which every
/// scan below then skips — results over the survivors are byte-identical
/// (after id compaction) to a fresh build without the removed rows.
class LinearScanIndex : public ShardIndex {
 public:
  /// Takes ownership of the packed database codes.
  explicit LinearScanIndex(PackedCodes database);

  /// Live (non-tombstoned) rows.
  int size() const override { return database_.size() - tombstones_.dead_count(); }
  /// All rows ever appended, including tombstoned ones.
  int total_size() const override { return database_.size(); }
  int bits() const override { return database_.bits(); }
  const PackedCodes& database() const { return database_; }
  const PackedCodes& codes() const override { return database_; }
  const TombstoneSet& tombstones() const override { return tombstones_; }

  /// Top-k nearest live database codes to the packed query (ascending
  /// distance, then ascending id). k is clamped to the live row count.
  std::vector<Neighbor> TopK(const uint64_t* query, int k) const override;

  /// Batched top-k: one result list per query, each byte-identical to the
  /// corresponding TopK call. Routes through the cache-blocked SIMD scan
  /// (index/batch_scan.h), which reads each corpus block once per batch
  /// instead of once per query — the serving hot path.
  std::vector<std::vector<Neighbor>> TopKBatch(const uint64_t* const* queries,
                                               int num_queries,
                                               int k) const override;
  std::vector<std::vector<Neighbor>> TopKBatch(const PackedCodes& queries,
                                               int k) const;

  /// Appends `batch` after the current rows (ids total_size()..).
  void Append(const PackedCodes& batch) override;

  /// Tombstones row `id`; false when out of range or already dead.
  bool Remove(int id) override;

  /// Fresh LinearScanIndex over the survivor rows only (survivor order
  /// preserved, tombstone set empty).
  std::unique_ptr<ShardIndex> Compact() const override;

  /// Distances from the query to every database row, tombstoned rows
  /// included (used to build PR curves over all Hamming radii in one
  /// pass on frozen corpora).
  std::vector<int> AllDistances(const uint64_t* query) const;

  /// All live database codes within Hamming radius r (ascending id).
  std::vector<Neighbor> WithinRadius(const uint64_t* query, int r) const;

 private:
  PackedCodes database_;
  TombstoneSet tombstones_;
};

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_LINEAR_SCAN_H_
