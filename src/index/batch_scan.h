#ifndef UHSCM_INDEX_BATCH_SCAN_H_
#define UHSCM_INDEX_BATCH_SCAN_H_

#include <cstdint>
#include <vector>

#include "index/hamming_kernels.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"
#include "index/shard_index.h"

namespace uhscm::index {

struct BatchScanOptions {
  /// Codes per cache block; 0 picks a size that keeps one block of packed
  /// codes (~64 KiB) resident in L1/L2 while every query in the batch is
  /// scored against it.
  int code_block = 0;
  /// Kernel tier override for benches and the forced-tier CI runs; the
  /// default uses the process-wide dispatch decision (ActiveKernelTier).
  /// Unavailable tiers fall back to the best available tier below them.
  bool force_tier = false;
  KernelTier tier = KernelTier::kScalar;
  /// Use the fused distance+block-min kernel (BatchDistanceMinFn): the
  /// per-block minimum that drives the block-skip decision is computed in
  /// registers while the distances are written, instead of by a second
  /// pass over the distance buffer. Results are byte-identical either way
  /// (the kernels report the same distances); `false` keeps the unfused
  /// two-pass path for A/B benches.
  bool fused_min = true;
  /// Deletion bitmap over `db` rows (null = all rows live). Tombstoned
  /// rows are still scored by the kernel (the block stays contiguous) but
  /// can never enter a heap, so results match a scan over the survivors.
  const TombstoneSet* tombstones = nullptr;
};

/// Codes per cache block when BatchScanOptions::code_block == 0: sized so
/// one block of packed codes (~64 KiB) stays L1/L2-resident while every
/// query of the batch is scored against it. Shared with the self-join
/// engine, whose tiles are both query blocks and code blocks at once.
int PickCodeBlockSize(int words_per_code, int requested);

/// Sub-chunk width for hierarchical min-skip walks over a just-written
/// distance buffer: a chunk whose minimum is >= the frozen threshold is
/// skipped without paying the per-code displacement branch (see the
/// safety argument in src/index/README.md). Shared by the batched scan
/// and the self-join engine.
inline constexpr int kDistChunk = 128;

/// Minimum of dist[lo..hi) — a straight-line reduction the compiler
/// auto-vectorizes; the buffer is L1-resident because the kernel just
/// wrote it. Precondition: lo < hi.
inline int32_t ChunkMin(const int32_t* dist, int lo, int hi) {
  int32_t m = dist[lo];
  for (int i = lo + 1; i < hi; ++i) m = m < dist[i] ? m : dist[i];
  return m;
}

/// \brief Query-blocked x code-blocked exact top-k over packed codes.
///
/// Scores all `num_queries` queries against one cache-resident block of
/// codes before advancing to the next block, so each block of the corpus
/// is read from memory once per *batch* instead of once per *query* —
/// the Q-fold traffic amortization the per-query scan cannot get. Codes
/// are visited in ascending id order per query and top-k selection uses
/// the same bounded max-heap displacement rule as LinearScanIndex::TopK
/// (strict distance improvement only), so results — ids, distances, and
/// tie-break order — are byte-identical to the per-query scan. Once a
/// query's heap is full, its current worst distance is handed to the
/// kernel as an early-abandon threshold (see hamming_kernels.h).
std::vector<std::vector<Neighbor>> BatchTopK(
    const PackedCodes& db, const uint64_t* const* queries, int num_queries,
    int k, const BatchScanOptions& options = {});

/// Convenience overload for a PackedCodes batch of queries.
std::vector<std::vector<Neighbor>> BatchTopK(
    const PackedCodes& db, const PackedCodes& queries, int k,
    const BatchScanOptions& options = {});

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_BATCH_SCAN_H_
