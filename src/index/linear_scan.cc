#include "index/linear_scan.h"

#include <algorithm>

#include "index/batch_scan.h"

namespace uhscm::index {

LinearScanIndex::LinearScanIndex(PackedCodes database)
    : database_(std::move(database)) {
  tombstones_.Resize(database_.size());
}

std::vector<Neighbor> LinearScanIndex::TopK(const uint64_t* query,
                                            int k) const {
  k = std::min(k, size());
  if (k <= 0) return {};
  // Bounded max-heap selection: O(n log k) instead of materializing and
  // sorting all n distances — the difference between research-bench and
  // serving-path cost when k << n.
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return NeighborLess(a, b);
  };
  const bool dead_rows = tombstones_.any();
  std::vector<Neighbor> heap;
  heap.reserve(static_cast<size_t>(k));
  for (int i = 0; i < database_.size(); ++i) {
    if (dead_rows && tombstones_.Test(i)) continue;
    const int d = database_.DistanceTo(i, query);
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back({i, d});
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (d < heap.front().distance) {
      // Ids only ascend, so a distance tie with the current worst never
      // displaces it — strict < is the exact tie-break rule.
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = {i, d};
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

std::vector<std::vector<Neighbor>> LinearScanIndex::TopKBatch(
    const uint64_t* const* queries, int num_queries, int k) const {
  BatchScanOptions options;
  options.tombstones = tombstones_.any() ? &tombstones_ : nullptr;
  return BatchTopK(database_, queries, num_queries, k, options);
}

std::vector<std::vector<Neighbor>> LinearScanIndex::TopKBatch(
    const PackedCodes& queries, int k) const {
  BatchScanOptions options;
  options.tombstones = tombstones_.any() ? &tombstones_ : nullptr;
  return BatchTopK(database_, queries, k, options);
}

void LinearScanIndex::Append(const PackedCodes& batch) {
  database_.Append(batch);
  tombstones_.Resize(database_.size());
}

bool LinearScanIndex::Remove(int id) {
  if (id < 0 || id >= database_.size()) return false;
  return tombstones_.Set(id);
}

std::unique_ptr<ShardIndex> LinearScanIndex::Compact() const {
  return std::make_unique<LinearScanIndex>(
      CompactLiveRows(database_, tombstones_));
}

std::vector<int> LinearScanIndex::AllDistances(const uint64_t* query) const {
  std::vector<int> out(static_cast<size_t>(database_.size()));
  for (int i = 0; i < database_.size(); ++i) {
    out[static_cast<size_t>(i)] = database_.DistanceTo(i, query);
  }
  return out;
}

std::vector<Neighbor> LinearScanIndex::WithinRadius(const uint64_t* query,
                                                    int r) const {
  const bool dead_rows = tombstones_.any();
  std::vector<Neighbor> out;
  for (int i = 0; i < database_.size(); ++i) {
    if (dead_rows && tombstones_.Test(i)) continue;
    const int d = database_.DistanceTo(i, query);
    if (d <= r) out.push_back({i, d});
  }
  return out;
}

}  // namespace uhscm::index
