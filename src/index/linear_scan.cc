#include "index/linear_scan.h"

#include <algorithm>

namespace uhscm::index {

LinearScanIndex::LinearScanIndex(PackedCodes database)
    : database_(std::move(database)) {}

std::vector<Neighbor> LinearScanIndex::TopK(const uint64_t* query,
                                            int k) const {
  k = std::min(k, database_.size());
  if (k <= 0) return {};
  std::vector<Neighbor> all(static_cast<size_t>(database_.size()));
  for (int i = 0; i < database_.size(); ++i) {
    all[static_cast<size_t>(i)] = {i, database_.DistanceTo(i, query)};
  }
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  };
  std::partial_sort(all.begin(), all.begin() + k, all.end(), cmp);
  all.resize(static_cast<size_t>(k));
  return all;
}

std::vector<int> LinearScanIndex::AllDistances(const uint64_t* query) const {
  std::vector<int> out(static_cast<size_t>(database_.size()));
  for (int i = 0; i < database_.size(); ++i) {
    out[static_cast<size_t>(i)] = database_.DistanceTo(i, query);
  }
  return out;
}

std::vector<Neighbor> LinearScanIndex::WithinRadius(const uint64_t* query,
                                                    int r) const {
  std::vector<Neighbor> out;
  for (int i = 0; i < database_.size(); ++i) {
    const int d = database_.DistanceTo(i, query);
    if (d <= r) out.push_back({i, d});
  }
  return out;
}

}  // namespace uhscm::index
