#include "index/hamming_kernels.h"

#include <bit>
#include <cstdlib>

#if defined(UHSCM_HAVE_AVX2_KERNELS)
#include <immintrin.h>
#endif

namespace uhscm::index {
namespace {

inline int Popcount64(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(x);
#else
  return std::popcount(x);
#endif
}

[[maybe_unused]] inline int ScalarPair(const uint64_t* a, const uint64_t* b,
                                       int words) {
  int d = 0;
  for (int w = 0; w < words; ++w) d += Popcount64(a[w] ^ b[w]);
  return d;
}

/// Early-abandon only pays for itself when a meaningful fraction of the
/// per-code work can be skipped; below this width the partial-sum checks
/// cost more than the popcounts they save.
constexpr int kPruneMinWords = 16;

bool ForceScalarEnv() {
  const char* v = std::getenv("UHSCM_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

void BatchDistancesScalar(const uint64_t* query, const uint64_t* codes, int n,
                          int words, int32_t threshold, int32_t* out) {
  const bool prune = threshold != kNoThreshold && words >= kPruneMinWords;
  for (int i = 0; i < n; ++i) {
    const uint64_t* code = codes + static_cast<size_t>(i) * words;
    // Four accumulators keep the popcnt ports busy (same trick as
    // HammingDistance); the partial-sum check fires once per 16 words.
    int d0 = 0, d1 = 0, d2 = 0, d3 = 0;
    int w = 0;
    bool abandoned = false;
    for (; w + 4 <= words; w += 4) {
      d0 += Popcount64(query[w] ^ code[w]);
      d1 += Popcount64(query[w + 1] ^ code[w + 1]);
      d2 += Popcount64(query[w + 2] ^ code[w + 2]);
      d3 += Popcount64(query[w + 3] ^ code[w + 3]);
      if (prune && (w & 15) == 12 && d0 + d1 + d2 + d3 >= threshold) {
        // Partial popcounts only grow, so this code can never beat the
        // threshold — report the (>= threshold) partial and move on.
        abandoned = true;
        break;
      }
    }
    if (!abandoned) {
      for (; w < words; ++w) d0 += Popcount64(query[w] ^ code[w]);
    }
    out[i] = d0 + d1 + d2 + d3;
  }
}

#if defined(UHSCM_HAVE_AVX2_KERNELS)

#define UHSCM_AVX2_FN __attribute__((target("avx2")))

namespace {

/// Per-64-bit-lane popcount of a 256-bit vector: pshufb nibble LUT into
/// per-byte counts, then psadbw against zero to sum bytes per lane
/// (Mula's vectorized popcount).
UHSCM_AVX2_FN inline __m256i PopcountLanes64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

UHSCM_AVX2_FN inline uint64_t HorizontalSum64(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return static_cast<uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(s, 1));
}

/// Carry-save adder: (h, l) = a + b + c in bit-sliced form.
UHSCM_AVX2_FN inline void Csa(__m256i* h, __m256i* l, __m256i a, __m256i b,
                              __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  *h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  *l = _mm256_xor_si256(u, c);
}

/// XOR of the v-th 256-bit chunk (4 words) of a code and query row.
UHSCM_AVX2_FN inline __m256i LoadXor(const uint64_t* code,
                                     const uint64_t* query, int v) {
  const __m256i c = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(code + 4 * static_cast<size_t>(v)));
  const __m256i q = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(query + 4 * static_cast<size_t>(v)));
  return _mm256_xor_si256(c, q);
}

/// 64-bit codes: four codes per 256-bit load, one lane each.
UHSCM_AVX2_FN void BatchWords1(uint64_t q0, const uint64_t* codes, int n,
                               int32_t* out) {
  const __m256i q = _mm256_set1_epi64x(static_cast<long long>(q0));
  alignas(32) uint64_t tmp[4];
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp),
                       PopcountLanes64(_mm256_xor_si256(v, q)));
    out[i] = static_cast<int32_t>(tmp[0]);
    out[i + 1] = static_cast<int32_t>(tmp[1]);
    out[i + 2] = static_cast<int32_t>(tmp[2]);
    out[i + 3] = static_cast<int32_t>(tmp[3]);
  }
  for (; i < n; ++i) out[i] = Popcount64(q0 ^ codes[i]);
}

/// 128-bit codes: two codes per 256-bit load, two lanes each; two loads
/// per iteration for instruction-level parallelism.
UHSCM_AVX2_FN void BatchWords2(const uint64_t* query, const uint64_t* codes,
                               int n, int32_t* out) {
  const __m256i q = _mm256_setr_epi64x(
      static_cast<long long>(query[0]), static_cast<long long>(query[1]),
      static_cast<long long>(query[0]), static_cast<long long>(query[1]));
  alignas(32) uint64_t t0[4], t1[4];
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t* p = codes + 2 * static_cast<size_t>(i);
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4));
    _mm256_store_si256(reinterpret_cast<__m256i*>(t0),
                       PopcountLanes64(_mm256_xor_si256(v0, q)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(t1),
                       PopcountLanes64(_mm256_xor_si256(v1, q)));
    out[i] = static_cast<int32_t>(t0[0] + t0[1]);
    out[i + 1] = static_cast<int32_t>(t0[2] + t0[3]);
    out[i + 2] = static_cast<int32_t>(t1[0] + t1[1]);
    out[i + 3] = static_cast<int32_t>(t1[2] + t1[3]);
  }
  for (; i < n; ++i) {
    out[i] = ScalarPair(query, codes + 2 * static_cast<size_t>(i), 2);
  }
}

/// Any width >= 3 words: per-code vector accumulation. Codes of >= 32
/// words go through a Harley–Seal carry-save tree (one full popcount per
/// eight vectors); the rest accumulate lane popcounts directly. The tail
/// (words % 4) is scalar. With a finite `threshold`, the running lane
/// accumulator provides a monotone lower bound used to abandon codes
/// that can no longer beat the threshold.
UHSCM_AVX2_FN void BatchGeneric(const uint64_t* query, const uint64_t* codes,
                                int n, int words, int32_t threshold,
                                int32_t* out) {
  const int vecs = words / 4;
  const int tail_start = vecs * 4;
  const bool prune = threshold != kNoThreshold && words >= kPruneMinWords;
  for (int i = 0; i < n; ++i) {
    const uint64_t* code = codes + static_cast<size_t>(i) * words;
    uint64_t sum = 0;
    int v = 0;
    __m256i acc = _mm256_setzero_si256();
    bool abandoned = false;
    if (vecs >= 8) {
      __m256i ones = _mm256_setzero_si256();
      __m256i twos = _mm256_setzero_si256();
      __m256i fours = _mm256_setzero_si256();
      for (; v + 8 <= vecs; v += 8) {
        __m256i twos_a, twos_b, fours_a, fours_b, eights;
        Csa(&twos_a, &ones, ones, LoadXor(code, query, v),
            LoadXor(code, query, v + 1));
        Csa(&twos_b, &ones, ones, LoadXor(code, query, v + 2),
            LoadXor(code, query, v + 3));
        Csa(&fours_a, &twos, twos, twos_a, twos_b);
        Csa(&twos_a, &ones, ones, LoadXor(code, query, v + 4),
            LoadXor(code, query, v + 5));
        Csa(&twos_b, &ones, ones, LoadXor(code, query, v + 6),
            LoadXor(code, query, v + 7));
        Csa(&fours_b, &twos, twos, twos_a, twos_b);
        Csa(&eights, &fours, fours, fours_a, fours_b);
        acc = _mm256_add_epi64(acc, PopcountLanes64(eights));
        // 8 * acc ignores the ones/twos/fours residue, so it is a valid
        // lower bound of the distance counted so far.
        if (prune && 8 * HorizontalSum64(acc) >= static_cast<uint64_t>(threshold)) {
          sum = 8 * HorizontalSum64(acc);
          abandoned = true;
          break;
        }
      }
      if (!abandoned) {
        sum = 8 * HorizontalSum64(acc) +
              4 * HorizontalSum64(PopcountLanes64(fours)) +
              2 * HorizontalSum64(PopcountLanes64(twos)) +
              HorizontalSum64(PopcountLanes64(ones));
        acc = _mm256_setzero_si256();
      }
    }
    if (!abandoned) {
      for (; v < vecs; ++v) {
        acc = _mm256_add_epi64(acc,
                               PopcountLanes64(LoadXor(code, query, v)));
        if (prune && (v & 3) == 3 &&
            sum + HorizontalSum64(acc) >= static_cast<uint64_t>(threshold)) {
          abandoned = true;
          break;
        }
      }
      sum += HorizontalSum64(acc);
      if (!abandoned) {
        for (int w = tail_start; w < words; ++w) {
          sum += Popcount64(query[w] ^ code[w]);
        }
      }
    }
    out[i] = static_cast<int32_t>(sum);
  }
}

}  // namespace

void BatchDistancesAvx2(const uint64_t* query, const uint64_t* codes, int n,
                        int words, int32_t threshold, int32_t* out) {
  // Narrow codes are exact regardless of threshold — computing them fully
  // is cheaper than any pruning bookkeeping (the contract allows exact
  // values at or above the threshold).
  if (words == 1) {
    BatchWords1(query[0], codes, n, out);
  } else if (words == 2) {
    BatchWords2(query, codes, n, out);
  } else {
    BatchGeneric(query, codes, n, words, threshold, out);
  }
}

#endif  // UHSCM_HAVE_AVX2_KERNELS

bool Avx2Available() {
#if defined(UHSCM_HAVE_AVX2_KERNELS)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

KernelTier ActiveKernelTier() {
  static const KernelTier tier = [] {
    if (!ForceScalarEnv() && Avx2Available()) return KernelTier::kAvx2;
    return KernelTier::kScalar;
  }();
  return tier;
}

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

BatchDistanceFn GetBatchDistanceFn(KernelTier tier) {
#if defined(UHSCM_HAVE_AVX2_KERNELS)
  if (tier == KernelTier::kAvx2 && Avx2Available()) {
    return &BatchDistancesAvx2;
  }
#endif
  (void)tier;
  return &BatchDistancesScalar;
}

BatchDistanceFn GetBatchDistanceFn() {
  return GetBatchDistanceFn(ActiveKernelTier());
}

}  // namespace uhscm::index
