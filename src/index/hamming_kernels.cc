#include "index/hamming_kernels.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(UHSCM_HAVE_AVX2_KERNELS) || defined(UHSCM_HAVE_AVX512_KERNELS)
#include <immintrin.h>
#endif

namespace uhscm::index {
namespace {

inline int Popcount64(uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(x);
#else
  return std::popcount(x);
#endif
}

[[maybe_unused]] inline int ScalarPair(const uint64_t* a, const uint64_t* b,
                                       int words) {
  int d = 0;
  for (int w = 0; w < words; ++w) d += Popcount64(a[w] ^ b[w]);
  return d;
}

/// Early-abandon only pays for itself when a meaningful fraction of the
/// per-code work can be skipped; below this width the partial-sum checks
/// cost more than the popcounts they save.
constexpr int kPruneMinWords = 16;

inline int32_t MinInt32(int32_t a, int32_t b) { return a < b ? a : b; }

/// Scalar reference. The kTrackMin=false instantiation compiles the min
/// bookkeeping out entirely so the plain kernel keeps its old shape.
template <bool kTrackMin>
int32_t BatchScalarImpl(const uint64_t* query, const uint64_t* codes, int n,
                        int words, int32_t threshold, int32_t* out) {
  const bool prune = threshold != kNoThreshold && words >= kPruneMinWords;
  int32_t best = INT32_MAX;
  for (int i = 0; i < n; ++i) {
    const uint64_t* code = codes + static_cast<size_t>(i) * words;
    // Four accumulators keep the popcnt ports busy (same trick as
    // HammingDistance); the partial-sum check fires once per 16 words.
    int d0 = 0, d1 = 0, d2 = 0, d3 = 0;
    int w = 0;
    bool abandoned = false;
    for (; w + 4 <= words; w += 4) {
      d0 += Popcount64(query[w] ^ code[w]);
      d1 += Popcount64(query[w + 1] ^ code[w + 1]);
      d2 += Popcount64(query[w + 2] ^ code[w + 2]);
      d3 += Popcount64(query[w + 3] ^ code[w + 3]);
      if (prune && (w & 15) == 12 && d0 + d1 + d2 + d3 >= threshold) {
        // Partial popcounts only grow, so this code can never beat the
        // threshold — report the (>= threshold) partial and move on.
        abandoned = true;
        break;
      }
    }
    if (!abandoned) {
      for (; w < words; ++w) d0 += Popcount64(query[w] ^ code[w]);
    }
    out[i] = d0 + d1 + d2 + d3;
    if constexpr (kTrackMin) best = MinInt32(best, out[i]);
  }
  return best;
}

bool ForceScalarEnv() {
  const char* v = std::getenv("UHSCM_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

void BatchDistancesScalar(const uint64_t* query, const uint64_t* codes, int n,
                          int words, int32_t threshold, int32_t* out) {
  BatchScalarImpl<false>(query, codes, n, words, threshold, out);
}

int32_t BatchDistancesMinScalar(const uint64_t* query, const uint64_t* codes,
                                int n, int words, int32_t threshold,
                                int32_t* out) {
  return BatchScalarImpl<true>(query, codes, n, words, threshold, out);
}

#if defined(UHSCM_HAVE_AVX2_KERNELS)

#define UHSCM_AVX2_FN __attribute__((target("avx2")))

namespace {

/// Per-64-bit-lane popcount of a 256-bit vector: pshufb nibble LUT into
/// per-byte counts, then psadbw against zero to sum bytes per lane
/// (Mula's vectorized popcount).
UHSCM_AVX2_FN inline __m256i PopcountLanes64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

UHSCM_AVX2_FN inline uint64_t HorizontalSum64(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return static_cast<uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(s, 1));
}

/// Carry-save adder: (h, l) = a + b + c in bit-sliced form.
UHSCM_AVX2_FN inline void Csa(__m256i* h, __m256i* l, __m256i a, __m256i b,
                              __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  *h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  *l = _mm256_xor_si256(u, c);
}

/// XOR of the v-th 256-bit chunk (4 words) of a code and query row.
UHSCM_AVX2_FN inline __m256i LoadXor(const uint64_t* code,
                                     const uint64_t* query, int v) {
  const __m256i c = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(code + 4 * static_cast<size_t>(v)));
  const __m256i q = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(query + 4 * static_cast<size_t>(v)));
  return _mm256_xor_si256(c, q);
}

/// 64-bit codes: four codes per 256-bit load, one lane each.
template <bool kTrackMin>
UHSCM_AVX2_FN int32_t BatchWords1(uint64_t q0, const uint64_t* codes, int n,
                                  int32_t* out) {
  const __m256i q = _mm256_set1_epi64x(static_cast<long long>(q0));
  alignas(32) uint64_t tmp[4];
  int32_t best = INT32_MAX;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp),
                       PopcountLanes64(_mm256_xor_si256(v, q)));
    out[i] = static_cast<int32_t>(tmp[0]);
    out[i + 1] = static_cast<int32_t>(tmp[1]);
    out[i + 2] = static_cast<int32_t>(tmp[2]);
    out[i + 3] = static_cast<int32_t>(tmp[3]);
    if constexpr (kTrackMin) {
      best = MinInt32(best, MinInt32(MinInt32(out[i], out[i + 1]),
                                     MinInt32(out[i + 2], out[i + 3])));
    }
  }
  for (; i < n; ++i) {
    out[i] = Popcount64(q0 ^ codes[i]);
    if constexpr (kTrackMin) best = MinInt32(best, out[i]);
  }
  return best;
}

/// 128-bit codes: two codes per 256-bit load, two lanes each; two loads
/// per iteration for instruction-level parallelism.
template <bool kTrackMin>
UHSCM_AVX2_FN int32_t BatchWords2(const uint64_t* query, const uint64_t* codes,
                                  int n, int32_t* out) {
  const __m256i q = _mm256_setr_epi64x(
      static_cast<long long>(query[0]), static_cast<long long>(query[1]),
      static_cast<long long>(query[0]), static_cast<long long>(query[1]));
  alignas(32) uint64_t t0[4], t1[4];
  int32_t best = INT32_MAX;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t* p = codes + 2 * static_cast<size_t>(i);
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4));
    _mm256_store_si256(reinterpret_cast<__m256i*>(t0),
                       PopcountLanes64(_mm256_xor_si256(v0, q)));
    _mm256_store_si256(reinterpret_cast<__m256i*>(t1),
                       PopcountLanes64(_mm256_xor_si256(v1, q)));
    out[i] = static_cast<int32_t>(t0[0] + t0[1]);
    out[i + 1] = static_cast<int32_t>(t0[2] + t0[3]);
    out[i + 2] = static_cast<int32_t>(t1[0] + t1[1]);
    out[i + 3] = static_cast<int32_t>(t1[2] + t1[3]);
    if constexpr (kTrackMin) {
      best = MinInt32(best, MinInt32(MinInt32(out[i], out[i + 1]),
                                     MinInt32(out[i + 2], out[i + 3])));
    }
  }
  for (; i < n; ++i) {
    out[i] = ScalarPair(query, codes + 2 * static_cast<size_t>(i), 2);
    if constexpr (kTrackMin) best = MinInt32(best, out[i]);
  }
  return best;
}

/// Any width >= 3 words: per-code vector accumulation. Codes of >= 32
/// words go through a Harley–Seal carry-save tree (one full popcount per
/// eight vectors); the rest accumulate lane popcounts directly. The tail
/// (words % 4) is scalar. With a finite `threshold`, the running lane
/// accumulator provides a monotone lower bound used to abandon codes
/// that can no longer beat the threshold.
template <bool kTrackMin>
UHSCM_AVX2_FN int32_t BatchGeneric(const uint64_t* query,
                                   const uint64_t* codes, int n, int words,
                                   int32_t threshold, int32_t* out) {
  const int vecs = words / 4;
  const int tail_start = vecs * 4;
  const bool prune = threshold != kNoThreshold && words >= kPruneMinWords;
  int32_t best = INT32_MAX;
  for (int i = 0; i < n; ++i) {
    const uint64_t* code = codes + static_cast<size_t>(i) * words;
    uint64_t sum = 0;
    int v = 0;
    __m256i acc = _mm256_setzero_si256();
    bool abandoned = false;
    if (vecs >= 8) {
      __m256i ones = _mm256_setzero_si256();
      __m256i twos = _mm256_setzero_si256();
      __m256i fours = _mm256_setzero_si256();
      for (; v + 8 <= vecs; v += 8) {
        __m256i twos_a, twos_b, fours_a, fours_b, eights;
        Csa(&twos_a, &ones, ones, LoadXor(code, query, v),
            LoadXor(code, query, v + 1));
        Csa(&twos_b, &ones, ones, LoadXor(code, query, v + 2),
            LoadXor(code, query, v + 3));
        Csa(&fours_a, &twos, twos, twos_a, twos_b);
        Csa(&twos_a, &ones, ones, LoadXor(code, query, v + 4),
            LoadXor(code, query, v + 5));
        Csa(&twos_b, &ones, ones, LoadXor(code, query, v + 6),
            LoadXor(code, query, v + 7));
        Csa(&fours_b, &twos, twos, twos_a, twos_b);
        Csa(&eights, &fours, fours, fours_a, fours_b);
        acc = _mm256_add_epi64(acc, PopcountLanes64(eights));
        // 8 * acc ignores the ones/twos/fours residue, so it is a valid
        // lower bound of the distance counted so far.
        if (prune && 8 * HorizontalSum64(acc) >= static_cast<uint64_t>(threshold)) {
          sum = 8 * HorizontalSum64(acc);
          abandoned = true;
          break;
        }
      }
      if (!abandoned) {
        sum = 8 * HorizontalSum64(acc) +
              4 * HorizontalSum64(PopcountLanes64(fours)) +
              2 * HorizontalSum64(PopcountLanes64(twos)) +
              HorizontalSum64(PopcountLanes64(ones));
        acc = _mm256_setzero_si256();
      }
    }
    if (!abandoned) {
      for (; v < vecs; ++v) {
        acc = _mm256_add_epi64(acc,
                               PopcountLanes64(LoadXor(code, query, v)));
        if (prune && (v & 3) == 3 &&
            sum + HorizontalSum64(acc) >= static_cast<uint64_t>(threshold)) {
          abandoned = true;
          break;
        }
      }
      sum += HorizontalSum64(acc);
      if (!abandoned) {
        for (int w = tail_start; w < words; ++w) {
          sum += Popcount64(query[w] ^ code[w]);
        }
      }
    }
    out[i] = static_cast<int32_t>(sum);
    if constexpr (kTrackMin) best = MinInt32(best, out[i]);
  }
  return best;
}

template <bool kTrackMin>
int32_t BatchAvx2Impl(const uint64_t* query, const uint64_t* codes, int n,
                      int words, int32_t threshold, int32_t* out) {
  // Narrow codes are exact regardless of threshold — computing them fully
  // is cheaper than any pruning bookkeeping (the contract allows exact
  // values at or above the threshold).
  if (words == 1) return BatchWords1<kTrackMin>(query[0], codes, n, out);
  if (words == 2) return BatchWords2<kTrackMin>(query, codes, n, out);
  return BatchGeneric<kTrackMin>(query, codes, n, words, threshold, out);
}

}  // namespace

void BatchDistancesAvx2(const uint64_t* query, const uint64_t* codes, int n,
                        int words, int32_t threshold, int32_t* out) {
  BatchAvx2Impl<false>(query, codes, n, words, threshold, out);
}

int32_t BatchDistancesMinAvx2(const uint64_t* query, const uint64_t* codes,
                              int n, int words, int32_t threshold,
                              int32_t* out) {
  return BatchAvx2Impl<true>(query, codes, n, words, threshold, out);
}

#endif  // UHSCM_HAVE_AVX2_KERNELS

#if defined(UHSCM_HAVE_AVX512_KERNELS)

#define UHSCM_AVX512_FN __attribute__((target("avx512f,avx512bw,avx512vl")))
#define UHSCM_AVX512VP_FN \
  __attribute__((target("avx512f,avx512bw,avx512vl,avx512vpopcntdq")))

namespace {

// ------------------------- VPOPCNTDQ sub-tier (Ice Lake+, Zen 4+) -------

/// XOR of the v-th 512-bit chunk (8 words) of a code and query row.
UHSCM_AVX512_FN inline __m512i LoadXor512(const uint64_t* code,
                                          const uint64_t* query, int v) {
  const __m512i c = _mm512_loadu_si512(code + 8 * static_cast<size_t>(v));
  const __m512i q = _mm512_loadu_si512(query + 8 * static_cast<size_t>(v));
  return _mm512_xor_si512(c, q);
}

/// 64-bit codes: eight codes per 512-bit load, one native popcount each;
/// the 64->32 narrowing store writes all eight outputs at once.
template <bool kTrackMin>
UHSCM_AVX512VP_FN int32_t BatchWords1Vp(uint64_t q0, const uint64_t* codes,
                                        int n, int32_t* out) {
  const __m512i q = _mm512_set1_epi64(static_cast<long long>(q0));
  __m512i minacc = _mm512_set1_epi64(INT32_MAX);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(codes + i);
    const __m512i p = _mm512_popcnt_epi64(_mm512_xor_si512(v, q));
    if constexpr (kTrackMin) minacc = _mm512_min_epi64(minacc, p);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm512_cvtepi64_epi32(p));
  }
  int32_t best = INT32_MAX;
  if constexpr (kTrackMin) {
    best = static_cast<int32_t>(_mm512_reduce_min_epi64(minacc));
  }
  for (; i < n; ++i) {
    out[i] = Popcount64(q0 ^ codes[i]);
    if constexpr (kTrackMin) best = MinInt32(best, out[i]);
  }
  return best;
}

/// 128-bit codes: four codes per 512-bit load; adjacent 64-bit lane
/// pairs sum into the even lanes, which a lane gather extracts.
template <bool kTrackMin>
UHSCM_AVX512VP_FN int32_t BatchWords2Vp(const uint64_t* query,
                                        const uint64_t* codes, int n,
                                        int32_t* out) {
  const __m512i q = _mm512_broadcast_i32x4(_mm_loadu_si128(
      reinterpret_cast<const __m128i*>(query)));
  // Selects lanes {0,2,4,6} (the per-code pair sums) of one vector.
  const __m512i even = _mm512_setr_epi64(0, 2, 4, 6, 0, 2, 4, 6);
  __m512i minacc = _mm512_set1_epi64(INT32_MAX);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t* p = codes + 2 * static_cast<size_t>(i);
    const __m512i v = _mm512_loadu_si512(p);
    const __m512i cnt = _mm512_popcnt_epi64(_mm512_xor_si512(v, q));
    // lane j += lane j+1: after the shift, even lanes hold code sums.
    const __m512i shifted = _mm512_alignr_epi64(_mm512_setzero_si512(), cnt, 1);
    const __m512i sums = _mm512_add_epi64(cnt, shifted);
    const __m512i packed = _mm512_permutexvar_epi64(even, sums);
    if constexpr (kTrackMin) minacc = _mm512_min_epi64(minacc, packed);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(_mm512_cvtepi64_epi32(packed)));
  }
  int32_t best = INT32_MAX;
  if constexpr (kTrackMin) {
    best = static_cast<int32_t>(_mm512_reduce_min_epi64(minacc));
  }
  for (; i < n; ++i) {
    out[i] = ScalarPair(query, codes + 2 * static_cast<size_t>(i), 2);
    if constexpr (kTrackMin) best = MinInt32(best, out[i]);
  }
  return best;
}

/// Any width >= 3 words, native popcount: two 512-bit accumulators (16
/// words per iteration) keep the VPOPCNTQ port busy; the 8-word tail of
/// the vectorized region uses one vector, the final < 8 words are
/// scalar. Pruning checks the running lane sums every 16 words, like the
/// scalar kernel.
template <bool kTrackMin>
UHSCM_AVX512VP_FN int32_t BatchGenericVp(const uint64_t* query,
                                         const uint64_t* codes, int n,
                                         int words, int32_t threshold,
                                         int32_t* out) {
  const int vecs = words / 8;
  const int tail_start = vecs * 8;
  const bool prune = threshold != kNoThreshold && words >= kPruneMinWords;
  int32_t best = INT32_MAX;
  for (int i = 0; i < n; ++i) {
    const uint64_t* code = codes + static_cast<size_t>(i) * words;
    uint64_t sum = 0;
    int v = 0;
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    bool abandoned = false;
    for (; v + 2 <= vecs; v += 2) {
      acc0 = _mm512_add_epi64(acc0,
                              _mm512_popcnt_epi64(LoadXor512(code, query, v)));
      acc1 = _mm512_add_epi64(
          acc1, _mm512_popcnt_epi64(LoadXor512(code, query, v + 1)));
      if (prune &&
          static_cast<uint64_t>(_mm512_reduce_add_epi64(acc0)) +
                  static_cast<uint64_t>(_mm512_reduce_add_epi64(acc1)) >=
              static_cast<uint64_t>(threshold)) {
        sum = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc0)) +
              static_cast<uint64_t>(_mm512_reduce_add_epi64(acc1));
        abandoned = true;
        break;
      }
    }
    if (!abandoned) {
      if (v < vecs) {
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(LoadXor512(code, query, v)));
      }
      sum = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc0)) +
            static_cast<uint64_t>(_mm512_reduce_add_epi64(acc1));
      for (int w = tail_start; w < words; ++w) {
        sum += Popcount64(query[w] ^ code[w]);
      }
    }
    out[i] = static_cast<int32_t>(sum);
    if constexpr (kTrackMin) best = MinInt32(best, out[i]);
  }
  return best;
}

// --------------------- AVX-512BW sub-tier (no VPOPCNTDQ; Skylake-X) -----

/// Per-64-bit-lane popcount of a 512-bit vector via the same pshufb
/// nibble LUT as the AVX2 tier, twice as wide.
UHSCM_AVX512_FN inline __m512i PopcountLanes64Bw(__m512i v) {
  const __m512i lut = _mm512_broadcast_i32x4(_mm_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, low);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low);
  const __m512i cnt = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                                      _mm512_shuffle_epi8(lut, hi));
  return _mm512_sad_epu8(cnt, _mm512_setzero_si512());
}

/// Carry-save adder, 512-bit: (h, l) = a + b + c in bit-sliced form.
UHSCM_AVX512_FN inline void Csa512(__m512i* h, __m512i* l, __m512i a,
                                   __m512i b, __m512i c) {
  const __m512i u = _mm512_xor_si512(a, b);
  *h = _mm512_or_si512(_mm512_and_si512(a, b), _mm512_and_si512(u, c));
  *l = _mm512_xor_si512(u, c);
}

/// Width >= 8 words without native popcount: LUT popcounts over 512-bit
/// chunks, under a Harley–Seal carry-save tree once >= 8 chunks (64
/// words) are in play — one full LUT popcount per eight vectors.
template <bool kTrackMin>
UHSCM_AVX512_FN int32_t BatchGenericBw(const uint64_t* query,
                                       const uint64_t* codes, int n, int words,
                                       int32_t threshold, int32_t* out) {
  const int vecs = words / 8;
  const int tail_start = vecs * 8;
  const bool prune = threshold != kNoThreshold && words >= kPruneMinWords;
  int32_t best = INT32_MAX;
  for (int i = 0; i < n; ++i) {
    const uint64_t* code = codes + static_cast<size_t>(i) * words;
    uint64_t sum = 0;
    int v = 0;
    __m512i acc = _mm512_setzero_si512();
    bool abandoned = false;
    if (vecs >= 8) {
      __m512i ones = _mm512_setzero_si512();
      __m512i twos = _mm512_setzero_si512();
      __m512i fours = _mm512_setzero_si512();
      for (; v + 8 <= vecs; v += 8) {
        __m512i twos_a, twos_b, fours_a, fours_b, eights;
        Csa512(&twos_a, &ones, ones, LoadXor512(code, query, v),
               LoadXor512(code, query, v + 1));
        Csa512(&twos_b, &ones, ones, LoadXor512(code, query, v + 2),
               LoadXor512(code, query, v + 3));
        Csa512(&fours_a, &twos, twos, twos_a, twos_b);
        Csa512(&twos_a, &ones, ones, LoadXor512(code, query, v + 4),
               LoadXor512(code, query, v + 5));
        Csa512(&twos_b, &ones, ones, LoadXor512(code, query, v + 6),
               LoadXor512(code, query, v + 7));
        Csa512(&fours_b, &twos, twos, twos_a, twos_b);
        Csa512(&eights, &fours, fours, fours_a, fours_b);
        acc = _mm512_add_epi64(acc, PopcountLanes64Bw(eights));
        // 8 * acc ignores the ones/twos/fours residue, so it is a valid
        // lower bound of the distance counted so far.
        if (prune &&
            8 * static_cast<uint64_t>(_mm512_reduce_add_epi64(acc)) >=
                static_cast<uint64_t>(threshold)) {
          sum = 8 * static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
          abandoned = true;
          break;
        }
      }
      if (!abandoned) {
        sum =
            8 * static_cast<uint64_t>(_mm512_reduce_add_epi64(acc)) +
            4 * static_cast<uint64_t>(
                    _mm512_reduce_add_epi64(PopcountLanes64Bw(fours))) +
            2 * static_cast<uint64_t>(
                    _mm512_reduce_add_epi64(PopcountLanes64Bw(twos))) +
            static_cast<uint64_t>(
                _mm512_reduce_add_epi64(PopcountLanes64Bw(ones)));
        acc = _mm512_setzero_si512();
      }
    }
    if (!abandoned) {
      for (; v < vecs; ++v) {
        acc = _mm512_add_epi64(acc, PopcountLanes64Bw(LoadXor512(code, query, v)));
        if (prune && (v & 1) == 1 &&
            sum + static_cast<uint64_t>(_mm512_reduce_add_epi64(acc)) >=
                static_cast<uint64_t>(threshold)) {
          abandoned = true;
          break;
        }
      }
      sum += static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
      if (!abandoned) {
        for (int w = tail_start; w < words; ++w) {
          sum += Popcount64(query[w] ^ code[w]);
        }
      }
    }
    out[i] = static_cast<int32_t>(sum);
    if constexpr (kTrackMin) best = MinInt32(best, out[i]);
  }
  return best;
}

bool Avx512VpopcntSupported() {
  return __builtin_cpu_supports("avx512vpopcntdq");
}

template <bool kTrackMin>
int32_t BatchAvx512Impl(const uint64_t* query, const uint64_t* codes, int n,
                        int words, int32_t threshold, int32_t* out) {
  static const bool vpopcnt = Avx512VpopcntSupported();
  if (vpopcnt) {
    if (words == 1) return BatchWords1Vp<kTrackMin>(query[0], codes, n, out);
    if (words == 2) return BatchWords2Vp<kTrackMin>(query, codes, n, out);
    return BatchGenericVp<kTrackMin>(query, codes, n, words, threshold, out);
  }
  // BW-only hosts: the 512-bit LUT path only beats AVX2 once a code
  // spans whole 512-bit chunks; narrower codes stay on the AVX2 layouts
  // (any AVX-512 CPU runs them).
  if (words >= 8) {
    return BatchGenericBw<kTrackMin>(query, codes, n, words, threshold, out);
  }
  return BatchAvx2Impl<kTrackMin>(query, codes, n, words, threshold, out);
}

}  // namespace

void BatchDistancesAvx512(const uint64_t* query, const uint64_t* codes, int n,
                          int words, int32_t threshold, int32_t* out) {
  BatchAvx512Impl<false>(query, codes, n, words, threshold, out);
}

int32_t BatchDistancesMinAvx512(const uint64_t* query, const uint64_t* codes,
                                int n, int words, int32_t threshold,
                                int32_t* out) {
  return BatchAvx512Impl<true>(query, codes, n, words, threshold, out);
}

#endif  // UHSCM_HAVE_AVX512_KERNELS

bool Avx2Available() {
#if defined(UHSCM_HAVE_AVX2_KERNELS)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool Avx512Available() {
#if defined(UHSCM_HAVE_AVX512_KERNELS)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

bool Avx512VpopcntAvailable() {
#if defined(UHSCM_HAVE_AVX512_KERNELS)
  return Avx512Available() && __builtin_cpu_supports("avx512vpopcntdq");
#else
  return false;
#endif
}

bool ParseKernelTier(const char* name, KernelTier* tier) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *tier = KernelTier::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *tier = KernelTier::kAvx2;
    return true;
  }
  if (std::strcmp(name, "avx512") == 0) {
    *tier = KernelTier::kAvx512;
    return true;
  }
  return false;
}

bool KernelTierAvailable(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return true;
    case KernelTier::kAvx2:
      return Avx2Available();
    case KernelTier::kAvx512:
      return Avx512Available();
  }
  return false;
}

namespace {

KernelTier BestAvailableTier() {
  if (Avx512Available()) return KernelTier::kAvx512;
  if (Avx2Available()) return KernelTier::kAvx2;
  return KernelTier::kScalar;
}

/// Resolves the override chain (see ActiveKernelTier in the header).
/// Returns true and sets *tier when some override names a valid tier;
/// `source` receives which knob did, for the fallback notice.
bool ForcedTier(KernelTier* tier, const char** source) {
  if (const char* v = std::getenv("UHSCM_FORCE_TIER");
      v != nullptr && v[0] != '\0') {
    if (ParseKernelTier(v, tier)) {
      *source = "UHSCM_FORCE_TIER";
      return true;
    }
    std::fprintf(stderr,
                 "uhscm: UHSCM_FORCE_TIER=%s not recognized "
                 "(scalar|avx2|avx512); using automatic dispatch\n",
                 v);
  }
  if (ForceScalarEnv()) {
    *tier = KernelTier::kScalar;
    *source = "UHSCM_FORCE_SCALAR";
    return true;
  }
#if defined(UHSCM_FORCE_TIER_BUILD)
  if (ParseKernelTier(UHSCM_FORCE_TIER_BUILD, tier)) {
    *source = "-DUHSCM_FORCE_TIER";
    return true;
  }
#endif
  return false;
}

}  // namespace

KernelTier ActiveKernelTier() {
  static const KernelTier tier = [] {
    KernelTier forced;
    const char* source = nullptr;
    if (ForcedTier(&forced, &source)) {
      if (KernelTierAvailable(forced)) return forced;
      const KernelTier fallback = BestAvailableTier();
      std::fprintf(stderr,
                   "uhscm: %s=%s is not runnable on this CPU; "
                   "falling back to %s\n",
                   source, KernelTierName(forced), KernelTierName(fallback));
      return fallback;
    }
    return BestAvailableTier();
  }();
  return tier;
}

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

BatchDistanceFn GetBatchDistanceFn(KernelTier tier) {
#if defined(UHSCM_HAVE_AVX512_KERNELS)
  if (tier == KernelTier::kAvx512 && Avx512Available()) {
    return &BatchDistancesAvx512;
  }
#endif
#if defined(UHSCM_HAVE_AVX2_KERNELS)
  if (tier != KernelTier::kScalar && Avx2Available()) {
    return &BatchDistancesAvx2;
  }
#endif
  (void)tier;
  return &BatchDistancesScalar;
}

BatchDistanceMinFn GetBatchDistanceMinFn(KernelTier tier) {
#if defined(UHSCM_HAVE_AVX512_KERNELS)
  if (tier == KernelTier::kAvx512 && Avx512Available()) {
    return &BatchDistancesMinAvx512;
  }
#endif
#if defined(UHSCM_HAVE_AVX2_KERNELS)
  if (tier != KernelTier::kScalar && Avx2Available()) {
    return &BatchDistancesMinAvx2;
  }
#endif
  (void)tier;
  return &BatchDistancesMinScalar;
}

BatchDistanceFn GetBatchDistanceFn() {
  return GetBatchDistanceFn(ActiveKernelTier());
}

BatchDistanceMinFn GetBatchDistanceMinFn() {
  return GetBatchDistanceMinFn(ActiveKernelTier());
}

}  // namespace uhscm::index
