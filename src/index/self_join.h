#ifndef UHSCM_INDEX_SELF_JOIN_H_
#define UHSCM_INDEX_SELF_JOIN_H_

#include <cstdint>
#include <vector>

#include "index/hamming_kernels.h"
#include "index/neighbor.h"
#include "index/packed_codes.h"
#include "index/shard_index.h"

namespace uhscm::index {

/// \brief Tiled corpus x corpus self-join over packed codes.
///
/// The offline-analytics counterpart of the serving scan: every row is
/// simultaneously query and corpus. Instead of the branchy O(n^2)
/// per-pair loop (the mostsimilar shape), the corpus is walked as an
/// upper triangle of row tiles — each unordered pair of rows lands in
/// exactly one tile pair, is scored once by the fused batched kernels
/// (hamming_kernels.h), and credits both rows' reducers. Tile pairs run
/// on a ThreadPool; results are nevertheless byte-identical to the naive
/// per-pair reference (ReferenceTopKJoin / ReferenceRadiusJoin below),
/// including tie handling and tombstoned rows, because every reducer
/// keeps the exact k-smallest (distance, id) set, which is unique
/// regardless of the order candidates arrive in.
struct SelfJoinOptions {
  /// Rows per tile; 0 picks a size that keeps one tile of packed codes
  /// (~64 KiB) cache-resident while it is scanned as the inner block —
  /// the same sizing rule as the batched scan (PickCodeBlockSize).
  int tile = 0;
  /// Worker threads for the tile-pair loop (0 = hardware concurrency).
  int threads = 0;
  /// Kernel tier override for benches and forced-tier CI runs; the
  /// default uses the process-wide dispatch decision. Unavailable tiers
  /// grade down like BatchScanOptions::force_tier.
  bool force_tier = false;
  KernelTier tier = KernelTier::kScalar;
  /// Use the fused distance+block-min kernel for the tile skip decision;
  /// `false` keeps the unfused two-pass walk for A/B benches. Results
  /// are byte-identical either way.
  bool fused_min = true;
  /// Deletion bitmap over rows (null = all live). Tombstoned rows are
  /// excluded from the join entirely: they are never queries (their
  /// result list stays empty), never candidates, and never pair
  /// endpoints.
  const TombstoneSet* tombstones = nullptr;
};

/// Work accounting for one join call (also mirrored into the metrics
/// registry as join.tiles / join.pairs_pruned / join.pairs_scored when
/// the observability layer is compiled in).
struct SelfJoinStats {
  int64_t tiles = 0;         ///< tile-pair tasks executed
  int64_t pairs_total = 0;   ///< unordered live pairs the join covers
  int64_t pairs_pruned = 0;  ///< pairs disposed by tile/chunk min-skips
  int64_t pairs_scored = 0;  ///< pairs that reached the per-pair branch
  double seconds = 0.0;      ///< wall time of the join
};

/// \brief k nearest neighbors for every row (self-matches excluded).
///
/// result[i] holds the k live rows j != i with the smallest
/// (distance, id) keys, sorted by NeighborLess — exactly what
/// LinearScanIndex::TopK would return for row i's code against a corpus
/// with row i removed. k is clamped to live_rows - 1; tombstoned rows
/// get empty lists.
std::vector<std::vector<Neighbor>> TopKJoin(const PackedCodes& codes, int k,
                                            const SelfJoinOptions& options = {},
                                            SelfJoinStats* stats = nullptr);

/// One unordered pair surfaced by a threshold join: a < b always.
struct JoinPair {
  int a;
  int b;
  int distance;
};

inline bool operator==(const JoinPair& x, const JoinPair& y) {
  return x.a == y.a && x.b == y.b && x.distance == y.distance;
}

/// Canonical pair ordering: ascending (a, b).
inline bool JoinPairLess(const JoinPair& x, const JoinPair& y) {
  return x.a != y.a ? x.a < y.a : x.b < y.b;
}

/// \brief All unordered live pairs within Hamming radius (inclusive).
///
/// WithinRadius semantics lifted to the whole corpus: every {i, j} with
/// i < j, both live, and d(i, j) <= radius, sorted by (a, b). The tile
/// walk prunes non-qualifying tiles via the fused block minimum and
/// non-qualifying kDistChunk-code chunks via the chunk-min skip, so a
/// sparse join (small radius) runs at raw-kernel speed.
std::vector<JoinPair> RadiusJoin(const PackedCodes& codes, int radius,
                                 const SelfJoinOptions& options = {},
                                 SelfJoinStats* stats = nullptr);

/// How DedupGroups links rows into clusters.
enum class DedupLink {
  /// Union only reciprocal best matches: {i, j} is an edge iff each is
  /// the other's nearest neighbor (top-1 under (distance, id)) and
  /// d(i, j) <= radius — the mostsimilar "mutual match" rule. Clusters
  /// are disjoint pairs by construction.
  kReciprocalBest,
  /// Union every within-radius pair: clusters are the connected
  /// components of the radius graph (transitive near-duplicate closure —
  /// "the same photo re-exported five times" lands in one group).
  kRadius,
};

struct DedupOptions {
  /// Inclusive Hamming radius below which two rows count as duplicates.
  int radius = 0;
  DedupLink link = DedupLink::kRadius;
};

/// \brief Duplicate clusters from a threshold + best-match reduction.
struct DedupGroupsResult {
  /// Each group: member ids sorted ascending, size >= 2. Groups sorted
  /// by their first member (the canonical representative — the row a
  /// dedup pass would keep).
  std::vector<std::vector<int>> groups;
  /// Reciprocal best-match pairs within the radius (computed under both
  /// link modes; under kReciprocalBest these are exactly the union-find
  /// edges). Sorted by (a, b).
  std::vector<JoinPair> reciprocal_pairs;
  /// Sum of group sizes — rows that have at least one duplicate.
  int64_t rows_clustered = 0;
  SelfJoinStats join;
};

/// \brief Threshold + reciprocal-best-match union-find over the radius
/// join: duplicate clusters at corpus scale.
///
/// Runs RadiusJoin(radius), derives each row's best within-radius match
/// (which equals its global nearest neighbor whenever that neighbor
/// qualifies), and unions edges per DedupOptions::link. The reducer is
/// pure code over the pair list, so byte-identity of the radius join
/// carries over to the groups.
DedupGroupsResult DedupGroups(const PackedCodes& codes,
                              const DedupOptions& dedup,
                              const SelfJoinOptions& options = {});

/// Pure reducer from a (a, b)-sorted within-radius pair list to dedup
/// groups — exposed so tests and the reference path share the engine's
/// exact semantics.
DedupGroupsResult ReducePairsToGroups(const std::vector<JoinPair>& pairs,
                                      DedupLink link);

/// \brief Naive per-pair references — the branchy O(n^2) loop the engine
/// replaces, kept as the semantic oracle and the bench baseline.
///
/// Each unordered live pair is scored once with the per-pair
/// HammingDistance call and offered to both rows' bounded heaps
/// ((distance, id) displacement). Output is byte-identical to the tiled
/// engine by construction of both.
std::vector<std::vector<Neighbor>> ReferenceTopKJoin(
    const PackedCodes& codes, int k, const TombstoneSet* tombstones = nullptr);
std::vector<JoinPair> ReferenceRadiusJoin(
    const PackedCodes& codes, int radius,
    const TombstoneSet* tombstones = nullptr);

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_SELF_JOIN_H_
