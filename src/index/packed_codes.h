#ifndef UHSCM_INDEX_PACKED_CODES_H_
#define UHSCM_INDEX_PACKED_CODES_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace uhscm::index {

/// \brief Bit-packed hash codes with popcount Hamming distance.
///
/// Codes arrive as {-1,+1} float rows (the sgn() output of a hashing
/// model); bit b is set iff the float is positive. Each code occupies
/// ceil(k/64) uint64 words; Hamming distance is XOR + popcount per word —
/// the storage/lookup layer every retrieval protocol in the paper runs
/// on.
class PackedCodes {
 public:
  PackedCodes() = default;

  /// Packs an n x k {-1,+1} (or real-valued: sign is taken) code matrix.
  static PackedCodes FromSignMatrix(const linalg::Matrix& codes);

  /// Rebuilds from raw packed words (deserialization path). Precondition:
  /// words.size() == num_codes * ceil(bits/64).
  static PackedCodes FromRawWords(int num_codes, int bits,
                                  std::vector<uint64_t> words);

  /// Appends all of `other`'s codes (same bit width) after the current
  /// rows; the new rows take ids size() .. size() + other.size() - 1.
  /// An empty receiver adopts `other`'s width. Invalidates code()
  /// pointers (the storage may reallocate).
  void Append(const PackedCodes& other);

  /// Raw packed storage, row-major per code (serialization path).
  const std::vector<uint64_t>& words() const { return words_; }

  int size() const { return num_codes_; }
  int bits() const { return bits_; }
  int words_per_code() const { return words_per_code_; }

  const uint64_t* code(int i) const {
    return words_.data() + static_cast<size_t>(i) * words_per_code_;
  }

  /// Hamming distance between stored codes i and j.
  int Distance(int i, int j) const;

  /// Hamming distance between stored code i and an external packed code.
  int DistanceTo(int i, const uint64_t* other) const;

  /// Unpacks code i back to a {-1,+1} float vector (round-trip tests).
  std::vector<float> Unpack(int i) const;

 private:
  int num_codes_ = 0;
  int bits_ = 0;
  int words_per_code_ = 0;
  std::vector<uint64_t> words_;
};

/// Hamming distance between two word arrays of the given length.
int HammingDistance(const uint64_t* a, const uint64_t* b, int words);

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_PACKED_CODES_H_
