#ifndef UHSCM_INDEX_NEIGHBOR_H_
#define UHSCM_INDEX_NEIGHBOR_H_

#include <utility>
#include <vector>

namespace uhscm::index {

/// One retrieval hit: database position + Hamming distance.
struct Neighbor {
  int id;
  int distance;
};

/// The canonical result ordering every index in the repo emits: ascending
/// distance, ties broken by ascending id.
inline bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
}

/// Rewrites every neighbor id in place through `id_map` (shard-local ->
/// global, global -> compacted, ...). When the map is strictly
/// increasing, a list sorted by (distance, id) stays sorted.
template <typename Fn>
inline void RemapNeighborIds(std::vector<Neighbor>* list, Fn&& id_map) {
  for (Neighbor& nb : *list) nb.id = id_map(nb.id);
}

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_NEIGHBOR_H_
