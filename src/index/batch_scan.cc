#include "index/batch_scan.h"

#include <algorithm>

#include "obs/kernel_counters.h"

namespace uhscm::index {
namespace {

/// Block of packed codes targeted at ~64 KiB so it stays cache-resident
/// across all queries of the batch.
constexpr int kTargetBlockBytes = 64 * 1024;

}  // namespace

int PickCodeBlockSize(int words_per_code, int requested) {
  if (requested > 0) return requested;
  const int bytes_per_code = words_per_code * 8;
  return std::max(256, kTargetBlockBytes / bytes_per_code);
}

std::vector<std::vector<Neighbor>> BatchTopK(const PackedCodes& db,
                                             const uint64_t* const* queries,
                                             int num_queries, int k,
                                             const BatchScanOptions& options) {
  std::vector<std::vector<Neighbor>> results(
      static_cast<size_t>(std::max(0, num_queries)));
  const TombstoneSet* dead = options.tombstones;
  if (dead != nullptr && !dead->any()) dead = nullptr;
  // Clamp k to the live row count so a heap can actually fill (the
  // early-abandon threshold only arms on a full heap) and the result
  // size matches a scan over the survivors.
  k = std::min(k, db.size() - (dead != nullptr ? dead->dead_count() : 0));
  if (k <= 0 || num_queries <= 0) return results;

  const int n = db.size();
  const int words = db.words_per_code();
  const int block = PickCodeBlockSize(words, options.code_block);
  const BatchDistanceFn kernel = options.force_tier
                                     ? GetBatchDistanceFn(options.tier)
                                     : GetBatchDistanceFn();
  const BatchDistanceMinFn fused_kernel =
      options.force_tier ? GetBatchDistanceMinFn(options.tier)
                         : GetBatchDistanceMinFn();

  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return NeighborLess(a, b);
  };
  for (auto& heap : results) heap.reserve(static_cast<size_t>(k));
  std::vector<int32_t> dist(static_cast<size_t>(block));

  // Function-local work counters: plain integer bumps inside the scan
  // loops, one atomic flush to the registry when the batch is done.
  obs::KernelCounters counters;

  for (int begin = 0; begin < n; begin += block) {
    const int count = std::min(block, n - begin);
    const uint64_t* block_codes = db.code(begin);
    for (int q = 0; q < num_queries; ++q) {
      std::vector<Neighbor>& heap = results[static_cast<size_t>(q)];
      // Exact distances while the heap is still filling (it can only fill
      // during the first block(s)); once full, the frozen worst-of-heap is
      // a safe pruning threshold — it only shrinks within the block, and
      // the live heap check below re-applies the tighter bound.
      const int32_t threshold = static_cast<int>(heap.size()) == k
                                    ? heap.front().distance
                                    : kNoThreshold;
      // Warm heap: no insertion happened yet for this block, so the heap
      // front still equals `threshold`, and a block whose minimum
      // distance is >= it contains no qualifying code — skip the
      // per-code branch loop entirely. The fused kernel returns that
      // minimum from the registers the distances were computed in; the
      // unfused path re-reads the distance buffer it just wrote.
      if (options.fused_min) {
        const int32_t best = fused_kernel(queries[q], block_codes, count,
                                          words, threshold, dist.data());
        counters.rows_scanned += count;
        if (threshold != kNoThreshold) {
          counters.early_abandon_calls += 1;
          if (best >= threshold) {
            counters.blocks_skipped += 1;
            continue;
          }
        }
      } else {
        kernel(queries[q], block_codes, count, words, threshold, dist.data());
        counters.rows_scanned += count;
        if (threshold != kNoThreshold) {
          counters.early_abandon_calls += 1;
          int32_t best = dist[0];
          for (int i = 1; i < count; ++i) best = std::min(best, dist[i]);
          if (best >= threshold) {
            counters.blocks_skipped += 1;
            continue;
          }
        }
      }
      auto insert_range = [&](int lo, int hi) {
        for (int i = lo; i < hi; ++i) {
          if (dead != nullptr && dead->Test(begin + i)) continue;
          const int d = dist[i];
          if (static_cast<int>(heap.size()) < k) {
            heap.push_back({begin + i, d});
            std::push_heap(heap.begin(), heap.end(), cmp);
          } else if (d < heap.front().distance) {
            // Strict < matches the per-query scan: ids only ascend, so a
            // distance tie never displaces the current worst.
            std::pop_heap(heap.begin(), heap.end(), cmp);
            heap.back() = {begin + i, d};
            std::push_heap(heap.begin(), heap.end(), cmp);
          }
        }
      };
      if (options.fused_min && threshold != kNoThreshold) {
        // The block holds at least one qualifying code, but typically only
        // a handful: chunk-level min reductions (SIMD-friendly, L1-resident
        // reads) locate the hot chunks and only those pay the per-code
        // displacement branch.
        for (int c0 = 0; c0 < count; c0 += kDistChunk) {
          const int c1 = std::min(c0 + kDistChunk, count);
          if (ChunkMin(dist.data(), c0, c1) >= threshold) continue;
          insert_range(c0, c1);
        }
      } else {
        insert_range(0, count);
      }
    }
  }

  counters.Flush();
  for (auto& heap : results) std::sort_heap(heap.begin(), heap.end(), cmp);
  return results;
}

std::vector<std::vector<Neighbor>> BatchTopK(const PackedCodes& db,
                                             const PackedCodes& queries,
                                             int k,
                                             const BatchScanOptions& options) {
  std::vector<const uint64_t*> ptrs(static_cast<size_t>(queries.size()));
  for (int q = 0; q < queries.size(); ++q) ptrs[static_cast<size_t>(q)] = queries.code(q);
  return BatchTopK(db, ptrs.data(), queries.size(), k, options);
}

}  // namespace uhscm::index
