#ifndef UHSCM_INDEX_HAMMING_KERNELS_H_
#define UHSCM_INDEX_HAMMING_KERNELS_H_

#include <cstdint>

namespace uhscm::index {

/// \brief Batched Hamming-distance kernels with runtime CPU dispatch.
///
/// The serving and eval hot loops score one packed query against a long
/// contiguous run of packed codes. These kernels amortize that pattern:
/// one call computes `n` distances, letting the implementation vectorize
/// across codes (AVX2 nibble-LUT popcount, AVX-512 VPOPCNTDQ or 512-bit
/// Harley–Seal carry-save accumulation for wide codes) instead of paying
/// per-pair call and loop overhead. The scalar tier is the semantic
/// reference; every other tier must be bit-for-bit identical to it
/// (tests/hamming_kernels_test.cc).
enum class KernelTier {
  kScalar,  ///< portable unrolled __builtin_popcountll loop
  kAvx2,    ///< 256-bit pshufb nibble-LUT popcount, Harley–Seal for wide codes
  kAvx512,  ///< 512-bit VPOPCNTDQ, or Harley–Seal over 512-bit LUT popcounts
            ///< on AVX-512BW-only hosts
};

/// Number of dispatchable tiers (bench sweeps iterate 0..kNumKernelTiers).
inline constexpr int kNumKernelTiers = 3;

/// Distances from one query to `n` contiguous packed codes.
///
/// `codes` is a row-major run of `n * words` uint64s, `out` receives `n`
/// distances. `threshold` enables early-abandon pruning: every output
/// strictly below `threshold` is the exact Hamming distance; an output at
/// or above `threshold` is only guaranteed to be a lower bound of the true
/// distance that is itself >= threshold (the kernel may stop counting a
/// code once its partial popcount proves it cannot beat the threshold).
/// Pass `kNoThreshold` for fully exact output.
using BatchDistanceFn = void (*)(const uint64_t* query, const uint64_t* codes,
                                 int n, int words, int32_t threshold,
                                 int32_t* out);

/// Fused-reduction variant: identical output contract to BatchDistanceFn,
/// plus the minimum of the `n` reported outputs is returned — computed in
/// registers while the distances are still hot instead of by a second
/// pass over `out`. Because every reported output lower-bounds its true
/// distance (exactly equal below `threshold`), the returned value is an
/// exact lower bound of the true block minimum, and whenever the true
/// block minimum is < `threshold` the return value equals it exactly
/// (a code that beats the threshold is never abandoned). The batched scan
/// uses this to decide block skips without re-reading the distance buffer
/// it just wrote. Returns INT32_MAX when n == 0.
using BatchDistanceMinFn = int32_t (*)(const uint64_t* query,
                                       const uint64_t* codes, int n, int words,
                                       int32_t threshold, int32_t* out);

/// Threshold value that disables pruning (every distance exact).
inline constexpr int32_t kNoThreshold = INT32_MAX;

/// Reference scalar kernels (always available, always exact semantics).
void BatchDistancesScalar(const uint64_t* query, const uint64_t* codes, int n,
                          int words, int32_t threshold, int32_t* out);
int32_t BatchDistancesMinScalar(const uint64_t* query, const uint64_t* codes,
                                int n, int words, int32_t threshold,
                                int32_t* out);

/// True when this build carries the AVX2 tier and the CPU supports it.
bool Avx2Available();

/// True when this build carries the AVX-512 tier and the CPU supports
/// AVX-512F/BW/VL (the minimum the 512-bit kernels need). VPOPCNTDQ is
/// detected separately inside the tier: hosts with it use the native
/// 64-bit lane popcount, AVX-512BW-only hosts (Skylake-X era) use a
/// 512-bit nibble-LUT popcount under a Harley–Seal carry-save tree.
bool Avx512Available();

/// True when the AVX-512 tier would use native VPOPCNTDQ (informational,
/// for logs and bench labels).
bool Avx512VpopcntAvailable();

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UHSCM_HAVE_AVX2_KERNELS 1
#define UHSCM_HAVE_AVX512_KERNELS 1
/// AVX2 tier. Precondition: Avx2Available().
void BatchDistancesAvx2(const uint64_t* query, const uint64_t* codes, int n,
                        int words, int32_t threshold, int32_t* out);
int32_t BatchDistancesMinAvx2(const uint64_t* query, const uint64_t* codes,
                              int n, int words, int32_t threshold,
                              int32_t* out);
/// AVX-512 tier. Precondition: Avx512Available().
void BatchDistancesAvx512(const uint64_t* query, const uint64_t* codes, int n,
                          int words, int32_t threshold, int32_t* out);
int32_t BatchDistancesMinAvx512(const uint64_t* query, const uint64_t* codes,
                                int n, int words, int32_t threshold,
                                int32_t* out);
#endif

/// The tier the dispatcher selected for this process: the best tier the
/// CPU supports unless overridden. Override precedence, decided once at
/// first use:
///   1. UHSCM_FORCE_TIER=scalar|avx2|avx512 (environment)
///   2. UHSCM_FORCE_SCALAR=1 (environment; compat alias for =scalar)
///   3. -DUHSCM_FORCE_TIER=... at cmake configure time (build default)
/// A forced tier the CPU cannot run falls back to the best available
/// tier below it, with a one-time stderr notice; an unparseable value is
/// ignored the same way. CI uses the override to exercise every compiled
/// tier on capable machines.
KernelTier ActiveKernelTier();

/// Parses a tier name ("scalar", "avx2", "avx512") as used by
/// UHSCM_FORCE_TIER. Returns false (and leaves *tier untouched) for any
/// other string.
bool ParseKernelTier(const char* name, KernelTier* tier);

/// Human-readable tier name ("scalar", "avx2", "avx512") for logs and
/// benches.
const char* KernelTierName(KernelTier tier);

/// True when `tier` is compiled in and runnable on this CPU.
bool KernelTierAvailable(KernelTier tier);

/// The dispatched batch kernels for `ActiveKernelTier()`.
BatchDistanceFn GetBatchDistanceFn();
BatchDistanceMinFn GetBatchDistanceMinFn();

/// Kernels for an explicit tier (benches compare tiers side by side).
/// An unavailable tier falls back to the best available tier below it
/// (avx512 -> avx2 -> scalar).
BatchDistanceFn GetBatchDistanceFn(KernelTier tier);
BatchDistanceMinFn GetBatchDistanceMinFn(KernelTier tier);

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_HAMMING_KERNELS_H_
