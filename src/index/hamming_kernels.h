#ifndef UHSCM_INDEX_HAMMING_KERNELS_H_
#define UHSCM_INDEX_HAMMING_KERNELS_H_

#include <cstdint>

namespace uhscm::index {

/// \brief Batched Hamming-distance kernels with runtime CPU dispatch.
///
/// The serving and eval hot loops score one packed query against a long
/// contiguous run of packed codes. These kernels amortize that pattern:
/// one call computes `n` distances, letting the implementation vectorize
/// across codes (AVX2 nibble-LUT popcount, Harley–Seal carry-save
/// accumulation for wide codes) instead of paying per-pair call and loop
/// overhead. The scalar tier is the semantic reference; every other tier
/// must be bit-for-bit identical to it (tests/hamming_kernels_test.cc).
enum class KernelTier {
  kScalar,  ///< portable unrolled __builtin_popcountll loop
  kAvx2,    ///< 256-bit pshufb nibble-LUT popcount, Harley–Seal for wide codes
};

/// Distances from one query to `n` contiguous packed codes.
///
/// `codes` is a row-major run of `n * words` uint64s, `out` receives `n`
/// distances. `threshold` enables early-abandon pruning: every output
/// strictly below `threshold` is the exact Hamming distance; an output at
/// or above `threshold` is only guaranteed to be a lower bound of the true
/// distance that is itself >= threshold (the kernel may stop counting a
/// code once its partial popcount proves it cannot beat the threshold).
/// Pass `kNoThreshold` for fully exact output.
using BatchDistanceFn = void (*)(const uint64_t* query, const uint64_t* codes,
                                 int n, int words, int32_t threshold,
                                 int32_t* out);

/// Threshold value that disables pruning (every distance exact).
inline constexpr int32_t kNoThreshold = INT32_MAX;

/// Reference scalar kernel (always available, always exact semantics).
void BatchDistancesScalar(const uint64_t* query, const uint64_t* codes, int n,
                          int words, int32_t threshold, int32_t* out);

/// True when this build carries the AVX2 tier and the CPU supports it.
bool Avx2Available();

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UHSCM_HAVE_AVX2_KERNELS 1
/// AVX2 tier. Precondition: Avx2Available().
void BatchDistancesAvx2(const uint64_t* query, const uint64_t* codes, int n,
                        int words, int32_t threshold, int32_t* out);
#endif

/// The tier the dispatcher selected for this process: the best tier the
/// CPU supports, unless the environment variable UHSCM_FORCE_SCALAR is
/// set to a non-empty, non-"0" value (CI uses this to exercise the
/// fallback on AVX2 machines). Decided once, at first use.
KernelTier ActiveKernelTier();

/// Human-readable tier name ("scalar", "avx2") for logs and benches.
const char* KernelTierName(KernelTier tier);

/// The dispatched batch kernel for `ActiveKernelTier()`.
BatchDistanceFn GetBatchDistanceFn();

/// Kernel for an explicit tier (benches compare tiers side by side).
/// Falls back to scalar when the requested tier is unavailable.
BatchDistanceFn GetBatchDistanceFn(KernelTier tier);

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_HAMMING_KERNELS_H_
