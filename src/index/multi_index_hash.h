#ifndef UHSCM_INDEX_MULTI_INDEX_HASH_H_
#define UHSCM_INDEX_MULTI_INDEX_HASH_H_

#include <unordered_map>
#include <vector>

#include "index/linear_scan.h"
#include "index/packed_codes.h"

namespace uhscm::index {

/// \brief Multi-Index Hashing (Norouzi et al.) for sub-linear Hamming
/// radius queries — the hash-lookup protocol of §4.2 at database scale.
///
/// The k-bit code is split into s disjoint substrings; a code within
/// Hamming radius r of the query must match the query in at least one
/// substring within radius floor(r/s). Each substring gets an exact-match
/// hash table; candidates are gathered by enumerating all substring
/// values within the per-substring radius, then verified with a full
/// popcount distance. For the radii the PR protocol uses (small r),
/// enumeration stays tiny.
class MultiIndexHashTable {
 public:
  /// \param database packed database codes (owned).
  /// \param num_substrings s >= 1; substring width is ceil(bits/s). The
  ///        classic choice s = bits / log2(n) is applied when 0 is given.
  explicit MultiIndexHashTable(PackedCodes database, int num_substrings = 0);

  int size() const { return database_.size(); }
  int bits() const { return database_.bits(); }
  int num_substrings() const { return num_substrings_; }

  /// All database codes within Hamming radius r of the query, ascending
  /// id — exact, verified results (identical to LinearScanIndex::
  /// WithinRadius, which the tests cross-check).
  std::vector<Neighbor> WithinRadius(const uint64_t* query, int r) const;

 private:
  /// Extracts substring `s` (width substring_bits_) from a packed code.
  uint64_t ExtractSubstring(const uint64_t* code, int s) const;

  /// Recursively enumerates all values at Hamming distance <= radius from
  /// `value` over `width` bits, invoking the table probe for each.
  void EnumerateNeighbors(uint64_t value, int width, int radius,
                          int first_bit, int table,
                          std::vector<int>* candidates) const;

  PackedCodes database_;
  int num_substrings_ = 1;
  int substring_bits_ = 0;
  /// tables_[s] maps substring value -> database ids.
  std::vector<std::unordered_map<uint64_t, std::vector<int>>> tables_;
};

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_MULTI_INDEX_HASH_H_
