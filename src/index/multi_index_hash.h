#ifndef UHSCM_INDEX_MULTI_INDEX_HASH_H_
#define UHSCM_INDEX_MULTI_INDEX_HASH_H_

#include <unordered_map>
#include <vector>

#include "index/neighbor.h"
#include "index/packed_codes.h"
#include "index/shard_index.h"

namespace uhscm::index {

/// \brief Multi-Index Hashing (Norouzi et al.) for sub-linear Hamming
/// radius queries — the hash-lookup protocol of §4.2 at database scale.
///
/// The k-bit code is split into s disjoint substrings; a code within
/// Hamming radius r of the query must match the query in at least one
/// substring within radius floor(r/s). Each substring gets an exact-match
/// hash table; candidates are gathered by enumerating all substring
/// values within the per-substring radius, then verified with a full
/// popcount distance. For the radii the PR protocol uses (small r),
/// enumeration stays tiny.
///
/// Mutable through the ShardIndex seam: Append inserts the new rows into
/// every substring table; Remove tombstones a row, which candidate
/// verification then rejects (the stale table entries stay behind but can
/// never surface). The substring count is fixed at construction from the
/// initial database size.
class MultiIndexHashTable : public ShardIndex {
 public:
  /// \param database packed database codes (owned).
  /// \param num_substrings s >= 1; substring width is ceil(bits/s). The
  ///        classic choice s = bits / log2(n) is applied when 0 is given.
  explicit MultiIndexHashTable(PackedCodes database, int num_substrings = 0);

  /// Live (non-tombstoned) rows.
  int size() const override {
    return database_.size() - tombstones_.dead_count();
  }
  /// All rows ever appended, including tombstoned ones.
  int total_size() const override { return database_.size(); }
  int bits() const override { return database_.bits(); }
  int num_substrings() const { return num_substrings_; }
  const PackedCodes& codes() const override { return database_; }
  const TombstoneSet& tombstones() const override { return tombstones_; }

  /// All live database codes within Hamming radius r of the query,
  /// ascending id — exact, verified results (identical to
  /// LinearScanIndex::WithinRadius, which the tests cross-check).
  std::vector<Neighbor> WithinRadius(const uint64_t* query, int r) const;

  /// Exact top-k by progressive radius growth: the Hamming radius doubles
  /// until at least k verified live hits accumulate (or the radius covers
  /// the whole space), then hits are ranked by (distance, id). k is
  /// clamped to the live row count.
  std::vector<Neighbor> TopK(const uint64_t* query, int k) const override;

  /// Batched TopK — MIH has no cross-query amortization, so this is the
  /// per-query search in a loop (byte-identical results).
  std::vector<std::vector<Neighbor>> TopKBatch(const uint64_t* const* queries,
                                               int num_queries,
                                               int k) const override;

  /// Appends `batch` after the current rows and indexes the new rows in
  /// every substring table.
  void Append(const PackedCodes& batch) override;

  /// Tombstones row `id`; false when out of range or already dead.
  bool Remove(int id) override;

  /// Fresh MultiIndexHashTable over the survivor rows only: the stale
  /// table entries Remove left behind are rebuilt away. The substring
  /// count is carried over unchanged (not re-derived from the smaller
  /// row count) so replicas compacting the same shard stay identical.
  std::unique_ptr<ShardIndex> Compact() const override;

 private:
  /// Extracts substring `s` (width substring_bits_) from a packed code.
  uint64_t ExtractSubstring(const uint64_t* code, int s) const;

  /// Inserts rows [begin, end) into all substring tables.
  void IndexRows(int begin, int end);

  /// Recursively enumerates all values at Hamming distance <= radius from
  /// `value` over `width` bits, invoking the table probe for each.
  void EnumerateNeighbors(uint64_t value, int width, int radius,
                          int first_bit, int table,
                          std::vector<int>* candidates) const;

  PackedCodes database_;
  TombstoneSet tombstones_;
  int num_substrings_ = 1;
  int substring_bits_ = 0;
  /// tables_[s] maps substring value -> database ids.
  std::vector<std::unordered_map<uint64_t, std::vector<int>>> tables_;
};

}  // namespace uhscm::index

#endif  // UHSCM_INDEX_MULTI_INDEX_HASH_H_
