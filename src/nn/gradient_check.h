#ifndef UHSCM_NN_GRADIENT_CHECK_H_
#define UHSCM_NN_GRADIENT_CHECK_H_

#include <functional>

#include "nn/layer.h"

namespace uhscm::nn {

/// \brief Numerically verifies a model's analytic gradients.
///
/// `loss_fn` maps the model output to a scalar loss and must also populate
/// `grad_out` (dL/d output). The checker runs Forward/Backward to obtain
/// analytic parameter gradients, then perturbs each of up to
/// `max_entries_per_param` randomly chosen parameter entries by +-eps and
/// compares the central finite difference. Returns the maximum relative
/// error observed — tests assert it is small. Used by the nn unit tests
/// and by the UHSCM loss tests to certify every hand-derived gradient in
/// the repo.
double MaxRelativeGradientError(
    Layer* model, const linalg::Matrix& input,
    const std::function<double(const linalg::Matrix& output,
                               linalg::Matrix* grad_out)>& loss_fn,
    Rng* rng, int max_entries_per_param = 8, double eps = 1e-3);

}  // namespace uhscm::nn

#endif  // UHSCM_NN_GRADIENT_CHECK_H_
