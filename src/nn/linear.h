#ifndef UHSCM_NN_LINEAR_H_
#define UHSCM_NN_LINEAR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace uhscm::nn {

/// \brief Fully-connected layer: y = x W + b.
///
/// W is (in x out), b is (1 x out). Initialization is Xavier/Glorot
/// uniform by default — the paper initializes its replaced final layer
/// with Xavier initialization (§4.1).
class Linear : public Layer {
 public:
  /// Xavier-uniform initialization: U(-a, a), a = sqrt(6/(in+out)).
  Linear(int in_features, int out_features, Rng* rng);

  linalg::Matrix Forward(const linalg::Matrix& input) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  std::vector<Parameter> Parameters() override;
  std::string name() const override;

  int in_features() const { return weight_.rows(); }
  int out_features() const { return weight_.cols(); }

  const linalg::Matrix& weight() const { return weight_; }
  linalg::Matrix* mutable_weight() { return &weight_; }
  const linalg::Matrix& bias() const { return bias_; }

 private:
  linalg::Matrix weight_;       // in x out
  linalg::Matrix bias_;         // 1 x out
  linalg::Matrix weight_grad_;  // in x out
  linalg::Matrix bias_grad_;    // 1 x out
  linalg::Matrix cached_input_;
};

}  // namespace uhscm::nn

#endif  // UHSCM_NN_LINEAR_H_
