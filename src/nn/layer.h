#ifndef UHSCM_NN_LAYER_H_
#define UHSCM_NN_LAYER_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace uhscm::nn {

/// A trainable tensor: the value buffer and its accumulated gradient.
/// Both matrices always have identical shape; the optimizer owns the
/// momentum state keyed by position in the parameter list.
struct Parameter {
  linalg::Matrix* value = nullptr;
  linalg::Matrix* grad = nullptr;
};

/// \brief Base class for differentiable layers operating on mini-batches.
///
/// A batch is an n x d Matrix (rows are samples). Forward() must be called
/// before Backward(); layers cache whatever activations they need. This is
/// a deliberately small reverse-mode engine — exactly what the paper's
/// hashing network (stacked fully-connected layers with tanh output,
/// trained by SGD with momentum) requires.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch.
  virtual linalg::Matrix Forward(const linalg::Matrix& input) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must follow a Forward() on the same batch.
  virtual linalg::Matrix Backward(const linalg::Matrix& grad_output) = 0;

  /// Exposes trainable parameters (empty for activations).
  virtual std::vector<Parameter> Parameters() { return {}; }

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Layer name for debug printing.
  virtual std::string name() const = 0;
};

}  // namespace uhscm::nn

#endif  // UHSCM_NN_LAYER_H_
