#include "nn/activations.h"

#include <cmath>

namespace uhscm::nn {

linalg::Matrix Tanh::Forward(const linalg::Matrix& input) {
  linalg::Matrix out(input.rows(), input.cols());
  for (size_t i = 0; i < input.size(); ++i) {
    out.data()[i] = std::tanh(input.data()[i]);
  }
  cached_output_ = out;
  return out;
}

linalg::Matrix Tanh::Backward(const linalg::Matrix& grad_output) {
  linalg::Matrix grad(grad_output.rows(), grad_output.cols());
  for (size_t i = 0; i < grad_output.size(); ++i) {
    const float y = cached_output_.data()[i];
    grad.data()[i] = grad_output.data()[i] * (1.0f - y * y);
  }
  return grad;
}

linalg::Matrix Relu::Forward(const linalg::Matrix& input) {
  cached_input_ = input;
  linalg::Matrix out(input.rows(), input.cols());
  for (size_t i = 0; i < input.size(); ++i) {
    const float v = input.data()[i];
    out.data()[i] = v > 0.0f ? v : 0.0f;
  }
  return out;
}

linalg::Matrix Relu::Backward(const linalg::Matrix& grad_output) {
  linalg::Matrix grad(grad_output.rows(), grad_output.cols());
  for (size_t i = 0; i < grad_output.size(); ++i) {
    grad.data()[i] =
        cached_input_.data()[i] > 0.0f ? grad_output.data()[i] : 0.0f;
  }
  return grad;
}

}  // namespace uhscm::nn
