#ifndef UHSCM_NN_ACTIVATIONS_H_
#define UHSCM_NN_ACTIVATIONS_H_

#include <string>

#include "nn/layer.h"

namespace uhscm::nn {

/// \brief Element-wise tanh. The paper's hashing network uses tanh on the
/// final k-dimensional layer to approximate sign() differentiably (§3.4).
class Tanh : public Layer {
 public:
  linalg::Matrix Forward(const linalg::Matrix& input) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  linalg::Matrix cached_output_;
};

/// \brief Element-wise ReLU for hidden layers of the backbone MLP.
class Relu : public Layer {
 public:
  linalg::Matrix Forward(const linalg::Matrix& input) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  std::string name() const override { return "Relu"; }

 private:
  linalg::Matrix cached_input_;
};

}  // namespace uhscm::nn

#endif  // UHSCM_NN_ACTIVATIONS_H_
