#include "nn/sequential.h"

namespace uhscm::nn {

void Sequential::Append(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
}

linalg::Matrix Sequential::Forward(const linalg::Matrix& input) {
  linalg::Matrix x = input;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

linalg::Matrix Sequential::Backward(const linalg::Matrix& grad_output) {
  linalg::Matrix g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter> Sequential::Parameters() {
  std::vector<Parameter> params;
  for (auto& layer : layers_) {
    for (Parameter p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::string Sequential::name() const {
  std::string out = "Sequential[";
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) out += ", ";
    out += layers_[i]->name();
  }
  out += "]";
  return out;
}

}  // namespace uhscm::nn
