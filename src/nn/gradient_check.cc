#include "nn/gradient_check.h"

#include <algorithm>
#include <cmath>

namespace uhscm::nn {

double MaxRelativeGradientError(
    Layer* model, const linalg::Matrix& input,
    const std::function<double(const linalg::Matrix& output,
                               linalg::Matrix* grad_out)>& loss_fn,
    Rng* rng, int max_entries_per_param, double eps) {
  // Analytic pass.
  model->ZeroGrad();
  linalg::Matrix out = model->Forward(input);
  linalg::Matrix grad_out(out.rows(), out.cols());
  loss_fn(out, &grad_out);
  model->Backward(grad_out);

  std::vector<Parameter> params = model->Parameters();
  // Snapshot analytic gradients (they live inside the model and later
  // forward passes must not disturb the comparison).
  std::vector<linalg::Matrix> analytic;
  analytic.reserve(params.size());
  for (const Parameter& p : params) analytic.push_back(*p.grad);

  linalg::Matrix unused_grad;
  auto eval_loss = [&]() {
    linalg::Matrix o = model->Forward(input);
    linalg::Matrix g(o.rows(), o.cols());
    return loss_fn(o, &g);
  };

  double max_rel_err = 0.0;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    linalg::Matrix& w = *params[pi].value;
    const size_t total = w.size();
    const int checks =
        std::min<size_t>(static_cast<size_t>(max_entries_per_param), total);
    for (int c = 0; c < checks; ++c) {
      const size_t j = static_cast<size_t>(rng->UniformInt(total));
      const float orig = w.data()[j];
      w.data()[j] = orig + static_cast<float>(eps);
      const double lp = eval_loss();
      w.data()[j] = orig - static_cast<float>(eps);
      const double lm = eval_loss();
      w.data()[j] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic_g = analytic[pi].data()[j];
      // Floor of 1e-3 keeps float-precision noise on near-zero gradients
      // from dominating the relative error.
      const double denom =
          std::max({std::fabs(numeric), std::fabs(analytic_g), 1e-3});
      max_rel_err =
          std::max(max_rel_err, std::fabs(numeric - analytic_g) / denom);
    }
  }
  return max_rel_err;
}

}  // namespace uhscm::nn
