#ifndef UHSCM_NN_SEQUENTIAL_H_
#define UHSCM_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace uhscm::nn {

/// \brief Ordered stack of layers; the container behind every deep model
/// in this repo (the UHSCM hashing network and the deep baselines).
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; takes ownership.
  void Append(std::unique_ptr<Layer> layer);

  /// Number of layers.
  int size() const { return static_cast<int>(layers_.size()); }

  Layer* layer(int i) { return layers_[static_cast<size_t>(i)].get(); }

  linalg::Matrix Forward(const linalg::Matrix& input) override;
  linalg::Matrix Backward(const linalg::Matrix& grad_output) override;
  std::vector<Parameter> Parameters() override;
  std::string name() const override;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace uhscm::nn

#endif  // UHSCM_NN_SEQUENTIAL_H_
