#include "nn/layer.h"

namespace uhscm::nn {

void Layer::ZeroGrad() {
  for (Parameter& p : Parameters()) {
    p.grad->Fill(0.0f);
  }
}

}  // namespace uhscm::nn
