#include "nn/linear.h"

#include <cmath>

#include "common/string_util.h"
#include "linalg/ops.h"

namespace uhscm::nn {

Linear::Linear(int in_features, int out_features, Rng* rng)
    : weight_(in_features, out_features),
      bias_(1, out_features),
      weight_grad_(in_features, out_features),
      bias_grad_(1, out_features) {
  const float a = std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  for (int i = 0; i < in_features; ++i) {
    for (int j = 0; j < out_features; ++j) {
      weight_(i, j) = static_cast<float>(rng->Uniform(-a, a));
    }
  }
}

linalg::Matrix Linear::Forward(const linalg::Matrix& input) {
  cached_input_ = input;
  linalg::Matrix out = linalg::MatMul(input, weight_);
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    const float* b = bias_.Row(0);
    for (int c = 0; c < out.cols(); ++c) row[c] += b[c];
  }
  return out;
}

linalg::Matrix Linear::Backward(const linalg::Matrix& grad_output) {
  // dW += x^T g ; db += colsum(g) ; dx = g W^T.
  linalg::Matrix dw = linalg::MatMulTransA(cached_input_, grad_output);
  weight_grad_.Add(dw);
  for (int r = 0; r < grad_output.rows(); ++r) {
    const float* g = grad_output.Row(r);
    float* bg = bias_grad_.Row(0);
    for (int c = 0; c < grad_output.cols(); ++c) bg[c] += g[c];
  }
  return linalg::MatMulTransB(grad_output, weight_);
}

std::vector<Parameter> Linear::Parameters() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

std::string Linear::name() const {
  return StrFormat("Linear(%d, %d)", weight_.rows(), weight_.cols());
}

}  // namespace uhscm::nn
