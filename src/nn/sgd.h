#ifndef UHSCM_NN_SGD_H_
#define UHSCM_NN_SGD_H_

#include <vector>

#include "nn/layer.h"

namespace uhscm::nn {

/// Configuration mirrors the paper's optimizer (§4.1): mini-batch SGD with
/// 0.9 momentum, learning rate 0.006, weight decay 1e-5.
struct SgdOptions {
  float learning_rate = 0.006f;
  float momentum = 0.9f;
  float weight_decay = 1e-5f;
};

/// \brief SGD with classical momentum and decoupled-from-loss L2 weight
/// decay (applied as grad += wd * w, the torch.optim.SGD convention the
/// paper's PyTorch implementation uses).
class SgdOptimizer {
 public:
  /// Binds to the model's parameter list; momentum buffers are allocated
  /// lazily on the first Step(). The model must outlive the optimizer and
  /// its parameter list must not change between steps.
  SgdOptimizer(Layer* model, const SgdOptions& options);

  /// Applies one update using the gradients currently accumulated in the
  /// model, then leaves gradients untouched (call ZeroGrad before the next
  /// backward pass).
  void Step();

  /// Zeroes all model gradients.
  void ZeroGrad();

  const SgdOptions& options() const { return options_; }
  void set_learning_rate(float lr) { options_.learning_rate = lr; }

 private:
  Layer* model_;
  SgdOptions options_;
  std::vector<linalg::Matrix> velocity_;
  bool initialized_ = false;
};

}  // namespace uhscm::nn

#endif  // UHSCM_NN_SGD_H_
