#include "nn/sgd.h"

#include "common/status.h"

namespace uhscm::nn {

SgdOptimizer::SgdOptimizer(Layer* model, const SgdOptions& options)
    : model_(model), options_(options) {
  UHSCM_CHECK(model != nullptr, "SgdOptimizer: null model");
}

void SgdOptimizer::Step() {
  std::vector<Parameter> params = model_->Parameters();
  if (!initialized_) {
    velocity_.clear();
    velocity_.reserve(params.size());
    for (const Parameter& p : params) {
      velocity_.emplace_back(p.value->rows(), p.value->cols());
    }
    initialized_ = true;
  }
  UHSCM_CHECK(velocity_.size() == params.size(),
              "SgdOptimizer: parameter list changed between steps");

  for (size_t i = 0; i < params.size(); ++i) {
    linalg::Matrix& w = *params[i].value;
    const linalg::Matrix& g = *params[i].grad;
    linalg::Matrix& v = velocity_[i];
    const float lr = options_.learning_rate;
    const float mu = options_.momentum;
    const float wd = options_.weight_decay;
    for (size_t j = 0; j < w.size(); ++j) {
      const float grad = g.data()[j] + wd * w.data()[j];
      v.data()[j] = mu * v.data()[j] + grad;
      w.data()[j] -= lr * v.data()[j];
    }
  }
}

void SgdOptimizer::ZeroGrad() { model_->ZeroGrad(); }

}  // namespace uhscm::nn
