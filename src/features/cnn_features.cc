#include "features/cnn_features.h"

#include <cmath>

#include "common/status.h"
#include "common/thread_pool.h"
#include "linalg/ops.h"

namespace uhscm::features {

namespace {
uint64_t HashRow(const float* row, int n, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (int i = 0; i < n; ++i) {
    uint32_t bits;
    __builtin_memcpy(&bits, &row[i], sizeof(bits));
    h ^= bits;
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

SimulatedCnnFeatureExtractor::SimulatedCnnFeatureExtractor(
    int pixel_dim, const CnnFeatureOptions& options)
    : pixel_dim_(pixel_dim), options_(options) {
  UHSCM_CHECK(pixel_dim > 0, "pixel_dim must be positive");
  Rng rng(options_.seed);
  const float s1 = 1.0f / std::sqrt(static_cast<float>(pixel_dim));
  const float s2 = 1.0f / std::sqrt(static_cast<float>(options_.hidden_dim));
  w1_ = linalg::Matrix::RandomNormal(pixel_dim, options_.hidden_dim, &rng, s1);
  b1_.assign(static_cast<size_t>(options_.hidden_dim), 0.0f);
  for (auto& v : b1_) v = static_cast<float>(rng.Normal(0.0, 0.01));
  w2_ = linalg::Matrix::RandomNormal(options_.hidden_dim,
                                     options_.feature_dim, &rng, s2);
  const float ss = 1.0f / std::sqrt(static_cast<float>(options_.feature_dim));
  styles_ = linalg::Matrix::RandomNormal(std::max(options_.num_styles, 1),
                                         options_.feature_dim, &rng, ss);
}

linalg::Matrix SimulatedCnnFeatureExtractor::Extract(
    const linalg::Matrix& pixels) const {
  UHSCM_CHECK(pixels.cols() == pixel_dim_, "Extract: pixel dim mismatch");
  const int n = pixels.rows();
  linalg::Matrix out(n, options_.feature_dim);
  ParallelFor(n, [&](int i) {
    // Hidden = ReLU(x W1 + b1).
    std::vector<float> hidden(static_cast<size_t>(options_.hidden_dim), 0.0f);
    const float* x = pixels.Row(i);
    for (int p = 0; p < pixel_dim_; ++p) {
      const float xv = x[p];
      if (xv == 0.0f) continue;
      const float* wrow = w1_.Row(p);
      for (int h = 0; h < options_.hidden_dim; ++h) hidden[static_cast<size_t>(h)] += xv * wrow[h];
    }
    for (int h = 0; h < options_.hidden_dim; ++h) {
      float v = hidden[static_cast<size_t>(h)] + b1_[static_cast<size_t>(h)];
      hidden[static_cast<size_t>(h)] = v > 0.0f ? v : 0.0f;
    }
    // Out = hidden W2 + deterministic per-image noise.
    float* row = out.Row(i);
    for (int h = 0; h < options_.hidden_dim; ++h) {
      const float hv = hidden[static_cast<size_t>(h)];
      if (hv == 0.0f) continue;
      const float* wrow = w2_.Row(h);
      for (int f = 0; f < options_.feature_dim; ++f) row[f] += hv * wrow[f];
    }
    float norm = linalg::Norm2(row, options_.feature_dim);
    if (norm > 1e-12f) {
      for (int f = 0; f < options_.feature_dim; ++f) row[f] /= norm;
    }
    Rng noise_rng(HashRow(x, pixel_dim_, options_.seed));
    const float sigma = options_.feature_noise /
                        std::sqrt(static_cast<float>(options_.feature_dim));
    for (int f = 0; f < options_.feature_dim; ++f) {
      row[f] += sigma * static_cast<float>(noise_rng.Normal());
    }
    if (options_.num_styles > 0 && options_.style_strength > 0.0f) {
      const int style = static_cast<int>(
          noise_rng.UniformInt(static_cast<uint64_t>(options_.num_styles)));
      const float* srow = styles_.Row(style);
      // Style vectors are ~unit norm; scale by strength.
      for (int f = 0; f < options_.feature_dim; ++f) {
        row[f] += options_.style_strength * srow[f];
      }
    }
    norm = linalg::Norm2(row, options_.feature_dim);
    if (norm > 1e-12f) {
      for (int f = 0; f < options_.feature_dim; ++f) row[f] /= norm;
    }
  });
  return out;
}

}  // namespace uhscm::features
