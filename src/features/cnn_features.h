#ifndef UHSCM_FEATURES_CNN_FEATURES_H_
#define UHSCM_FEATURES_CNN_FEATURES_H_

#include "common/rng.h"
#include "linalg/matrix.h"

namespace uhscm::features {

/// Tunables of the simulated pretrained CNN.
struct CnnFeatureOptions {
  /// Output feature dimensionality (the paper uses VGG19 fc7 = 4096; the
  /// default here is smaller for laptop-scale runs but configurable).
  int feature_dim = 384;
  /// Hidden width of the fixed random two-layer extractor.
  int hidden_dim = 288;
  /// Additive isotropic feature noise, modelling the domain gap between
  /// ImageNet pretraining and the target dataset.
  float feature_noise = 0.6f;
  /// Correlated "style" noise: every image is deterministically assigned
  /// one of `num_styles` shared style vectors (think background, color
  /// cast, lighting) added with `style_strength` before normalization.
  /// Images sharing a style look alike in feature space regardless of
  /// class — the structured false positives that make the *extreme tail*
  /// of real feature-cosine distributions unreliable, which is the
  /// failure mode of threshold-on-cosine similarity constructions the
  /// paper's intro argues against.
  int num_styles = 32;
  /// Feature-level style defaults to off: the dataset-level pixel style
  /// (data::WorldOptions) is the canonical confound; this knob exists for
  /// extractor-only ablations.
  float style_strength = 0.0f;
  uint64_t seed = 0x5EEDF00DULL;
};

/// \brief A stand-in for frozen ImageNet-pretrained VGG19 features.
///
/// A fixed (never trained) random two-layer network x -> ReLU(xW1+b1)W2,
/// followed by deterministic per-image noise and L2 normalization. By
/// Johnson-Lindenstrauss the random layers approximately preserve the
/// pixel-space geometry, so features correlate with semantics — but more
/// diffusely than the VLP's prototype-matching scores, reproducing the
/// paper's premise that feature-cosine similarity matrices are weaker
/// guiding information than mined concept distributions (§1, §4.4.2).
///
/// Consumed by the four shallow baselines (LSH/SH/ITQ/AGH) and by the
/// deep baselines that build a similarity matrix from pretrained features
/// (SSDH, MLS3RDUH, BGAN, UTH).
class SimulatedCnnFeatureExtractor {
 public:
  explicit SimulatedCnnFeatureExtractor(int pixel_dim,
                                        const CnnFeatureOptions& options = {});

  int feature_dim() const { return options_.feature_dim; }
  int pixel_dim() const { return pixel_dim_; }

  /// n x feature_dim unit-norm features.
  linalg::Matrix Extract(const linalg::Matrix& pixels) const;

 private:
  int pixel_dim_;
  CnnFeatureOptions options_;
  linalg::Matrix w1_;      // pixel_dim x hidden
  linalg::Vector b1_;      // hidden
  linalg::Matrix w2_;      // hidden x feature_dim
  linalg::Matrix styles_;  // num_styles x feature_dim
};

}  // namespace uhscm::features

#endif  // UHSCM_FEATURES_CNN_FEATURES_H_
