#ifndef UHSCM_CORE_TRAINER_H_
#define UHSCM_CORE_TRAINER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/concept_miner.h"
#include "core/hashing_network.h"
#include "core/losses.h"
#include "data/concept_vocab.h"
#include "nn/sgd.h"
#include "vlp/simulated_vlp.h"

namespace uhscm::core {

/// How the semantic similarity matrix Q is constructed — the knob behind
/// the Table 2 ablations.
enum class SimilaritySource {
  /// Full UHSCM: mine, frequency-denoise (Eq. 4-5), re-mine, cosine.
  kDenoisedConcepts = 0,
  /// UHSCM_w/o_de: cosine of raw (un-denoised) concept distributions.
  kRawConcepts,
  /// UHSCM_IF: cosine of the VLP's image features; no concept mining.
  kImageFeatures,
  /// UHSCM_cN: k-means over concepts, clusters as merged pseudo-concepts.
  kKMeansClusters,
  /// UHSCM_avg: mean of the similarity matrices from all three prompts.
  kAveragePrompts,
};

/// Which regularizer accompanies Ls — Table 2 rows 13-14.
enum class ContrastiveMode {
  kModified = 0,  ///< the paper's Lc (Eq. 8)
  kNone,          ///< UHSCM_w/o_MCL
  kOriginal,      ///< UHSCM_CL: two-view J_c (Eq. 10)
};

/// Everything Algorithm 1 needs. Defaults are the paper's §4.1/§4.6
/// settings for CIFAR10.
struct UhscmConfig {
  int bits = 64;
  // Loss hyper-parameters (Eq. 11 / §4.6).
  float alpha = 0.2f;
  float beta = 0.001f;
  float gamma = 0.2f;
  float lambda = 0.8f;
  // Mining (§3.3.1 / §4.6).
  float tau_multiplier = 3.0f;
  vlp::PromptTemplate prompt = vlp::PromptTemplate::kAPhotoOfThe;
  // Optimization (§4.1). The paper fixes lr = 0.006 for *fine-tuning* an
  // ImageNet-pretrained VGG19; this repo's backbone substitute is trained
  // from scratch (DESIGN.md §1), where 0.006 stalls — 0.05 is the
  // retuned equivalent. All deep methods share the same value for the
  // paper's fairness protocol.
  float learning_rate = 0.02f;
  float momentum = 0.9f;
  float weight_decay = 1e-5f;
  int batch_size = 128;
  int max_epochs = 30;
  /// Early-stop when the epoch-mean loss improves by less than this
  /// relative amount.
  double convergence_tol = 1e-4;
  // Variant switches (ablations).
  SimilaritySource similarity_source = SimilaritySource::kDenoisedConcepts;
  ContrastiveMode contrastive_mode = ContrastiveMode::kModified;
  /// Only for kKMeansClusters: the N of UHSCM_cN.
  int kmeans_clusters = 40;
  // Network shape.
  HashingNetworkOptions network;
  uint64_t seed = 42;
};

/// Paper hyper-parameters per dataset (§4.6): alpha/lambda/gamma/beta.
UhscmConfig DefaultConfigFor(const std::string& dataset_name, int bits);

/// Artifacts of a completed run.
struct UhscmModel {
  std::unique_ptr<HashingNetwork> network;
  /// The n_train x n_train semantic similarity matrix actually used.
  linalg::Matrix similarity;
  /// Retained concept names after denoising (empty for the non-concept
  /// similarity sources).
  std::vector<std::string> retained_concepts;
  /// Mean total loss per epoch (diagnostics; monotone-ish decreasing).
  std::vector<double> epoch_losses;

  /// Binary codes in {-1,+1}^{n x k} for arbitrary images.
  linalg::Matrix Encode(const linalg::Matrix& pixels) const;
};

/// \brief End-to-end UHSCM (Algorithm 1): builds the semantic similarity
/// matrix with the simulated VLP, then trains the hashing network by
/// mini-batch SGD on Eq. (11).
class UhscmTrainer {
 public:
  UhscmTrainer(const vlp::SimulatedVlpModel* vlp, const UhscmConfig& config);

  /// Steps 2-5 of Algorithm 1: similarity construction only. Exposed for
  /// tests, diagnostics, and the concept-mining example.
  struct SimilarityArtifacts {
    linalg::Matrix q;
    std::vector<std::string> retained_concepts;
  };
  Result<SimilarityArtifacts> BuildSimilarity(
      const linalg::Matrix& train_pixels, const data::ConceptVocab& vocab,
      Rng* rng) const;

  /// Full Algorithm 1. `train_pixels` are the rows of X the model is
  /// fitted on; `vocab` is the randomly collected concept set C.
  Result<UhscmModel> Train(const linalg::Matrix& train_pixels,
                           const data::ConceptVocab& vocab) const;

  const UhscmConfig& config() const { return config_; }

 private:
  const vlp::SimulatedVlpModel* vlp_;
  UhscmConfig config_;
};

}  // namespace uhscm::core

#endif  // UHSCM_CORE_TRAINER_H_
