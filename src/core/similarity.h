#ifndef UHSCM_CORE_SIMILARITY_H_
#define UHSCM_CORE_SIMILARITY_H_

#include <vector>

#include "linalg/matrix.h"

namespace uhscm::core {

/// Q(i,j) = cosine(d_i, d_j) over rows of a distribution (or feature)
/// matrix — Eq. (3)/(6). Since concept distributions are non-negative,
/// entries lie in [0, 1]; the diagonal is exactly 1.
linalg::Matrix SimilarityFromDistributions(const linalg::Matrix& d);

/// Element-wise mean of several similarity matrices (the UHSCM_avg prompt
/// ablation, Table 2 row 6). Precondition: same shapes, non-empty list.
linalg::Matrix AverageSimilarity(const std::vector<linalg::Matrix>& mats);

/// Summary statistics of a similarity matrix used by tests and the
/// similarity-quality diagnostics in the examples.
struct SimilarityStats {
  float min = 0.0f;
  float max = 0.0f;
  float mean = 0.0f;
  /// Fraction of off-diagonal entries >= threshold.
  float frac_above_threshold = 0.0f;
};

SimilarityStats ComputeSimilarityStats(const linalg::Matrix& q,
                                       float threshold);

}  // namespace uhscm::core

#endif  // UHSCM_CORE_SIMILARITY_H_
