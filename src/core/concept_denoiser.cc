#include "core/concept_denoiser.h"

#include <algorithm>

#include "linalg/kmeans.h"

namespace uhscm::core {

std::vector<int> ConceptFrequencies(const linalg::Matrix& distributions) {
  std::vector<int> freq(static_cast<size_t>(distributions.cols()), 0);
  for (int i = 0; i < distributions.rows(); ++i) {
    const float* row = distributions.Row(i);
    int best = 0;
    for (int j = 1; j < distributions.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    ++freq[static_cast<size_t>(best)];
  }
  return freq;
}

DenoiseResult DenoiseConcepts(const linalg::Matrix& distributions,
                              const data::ConceptVocab& vocab) {
  UHSCM_CHECK(distributions.cols() == vocab.size(),
              "DenoiseConcepts: vocab / distribution width mismatch");
  DenoiseResult result;
  result.frequencies = ConceptFrequencies(distributions);

  const double n = static_cast<double>(distributions.rows());
  const double m = static_cast<double>(vocab.size());
  const double lo = 0.5 * n / m;  // Eq. (5) lower bound
  const double hi = 0.5 * n;      // Eq. (5) upper bound

  for (int j = 0; j < vocab.size(); ++j) {
    const double f = static_cast<double>(result.frequencies[static_cast<size_t>(j)]);
    if (f >= lo && f <= hi) result.kept_positions.push_back(j);
  }
  if (result.kept_positions.empty()) {
    // Degenerate fall-back: keep everything rather than return an empty
    // concept set.
    result.kept_positions.resize(static_cast<size_t>(vocab.size()));
    for (int j = 0; j < vocab.size(); ++j) {
      result.kept_positions[static_cast<size_t>(j)] = j;
    }
  }
  result.vocab = data::SubsetVocab(vocab, result.kept_positions);
  return result;
}

Result<linalg::Matrix> ClusterConceptsKMeans(const linalg::Matrix& scores,
                                             int num_clusters, Rng* rng) {
  if (num_clusters <= 0 || num_clusters > scores.cols()) {
    return Status::InvalidArgument(
        "ClusterConceptsKMeans: num_clusters out of range");
  }
  // Each concept is a point described by its score profile over images.
  linalg::Matrix concept_profiles = scores.Transposed();  // m x n
  Result<linalg::KMeansResult> km =
      linalg::KMeans(concept_profiles, num_clusters, rng);
  if (!km.ok()) return km.status();

  // Merged score = mean of member concepts' scores.
  linalg::Matrix merged(scores.rows(), num_clusters);
  std::vector<int> counts(static_cast<size_t>(num_clusters), 0);
  for (int j = 0; j < scores.cols(); ++j) {
    ++counts[static_cast<size_t>(km.ValueOrDie().assignments[static_cast<size_t>(j)])];
  }
  for (int i = 0; i < scores.rows(); ++i) {
    const float* src = scores.Row(i);
    float* dst = merged.Row(i);
    for (int j = 0; j < scores.cols(); ++j) {
      dst[km.ValueOrDie().assignments[static_cast<size_t>(j)]] += src[j];
    }
    for (int c = 0; c < num_clusters; ++c) {
      if (counts[static_cast<size_t>(c)] > 0) {
        dst[c] /= static_cast<float>(counts[static_cast<size_t>(c)]);
      }
    }
  }
  return merged;
}

}  // namespace uhscm::core
