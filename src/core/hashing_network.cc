#include "core/hashing_network.h"

#include "common/status.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/linear.h"

namespace uhscm::core {

HashingNetwork::HashingNetwork(int input_dim,
                               const HashingNetworkOptions& options, Rng* rng)
    : input_dim_(input_dim), options_(options) {
  UHSCM_CHECK(input_dim > 0, "HashingNetwork: input_dim must be positive");
  UHSCM_CHECK(options.bits > 0, "HashingNetwork: bits must be positive");
  model_.Append(std::make_unique<nn::Linear>(input_dim, options.hidden1, rng));
  model_.Append(std::make_unique<nn::Relu>());
  model_.Append(
      std::make_unique<nn::Linear>(options.hidden1, options.hidden2, rng));
  model_.Append(std::make_unique<nn::Relu>());
  model_.Append(std::make_unique<nn::Linear>(options.hidden2, options.bits, rng));
  model_.Append(std::make_unique<nn::Tanh>());
}

linalg::Matrix HashingNetwork::Forward(const linalg::Matrix& pixels) {
  UHSCM_CHECK(pixels.cols() == input_dim_,
              "HashingNetwork::Forward: input dim mismatch");
  return model_.Forward(pixels);
}

void HashingNetwork::Backward(const linalg::Matrix& grad_codes) {
  model_.Backward(grad_codes);
}

linalg::Matrix HashingNetwork::EncodeBinary(const linalg::Matrix& pixels) {
  return linalg::Sign(Forward(pixels));
}

}  // namespace uhscm::core
