#ifndef UHSCM_CORE_AUGMENT_H_
#define UHSCM_CORE_AUGMENT_H_

#include "common/rng.h"
#include "linalg/matrix.h"

namespace uhscm::core {

/// Parameters of the synthetic "data augmentation" used by the two-view
/// contrastive baselines (CIB, UHSCM_CL). In pixel space a view is the
/// image plus Gaussian perturbation, per-dimension dropout, and a global
/// intensity jitter — the vector-space analogue of crop/color-jitter.
struct AugmentOptions {
  float noise = 0.15f;
  float dropout = 0.1f;
  float intensity_jitter = 0.2f;
};

/// Returns an augmented copy of `pixels` (one independent view per row).
linalg::Matrix AugmentPixels(const linalg::Matrix& pixels,
                             const AugmentOptions& options, Rng* rng);

}  // namespace uhscm::core

#endif  // UHSCM_CORE_AUGMENT_H_
