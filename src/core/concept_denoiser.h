#ifndef UHSCM_CORE_CONCEPT_DENOISER_H_
#define UHSCM_CORE_CONCEPT_DENOISER_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/concept_vocab.h"
#include "linalg/matrix.h"

namespace uhscm::core {

/// Per-concept argmax frequencies f(c_i) over a distribution matrix
/// (Eq. 4): the number of images whose highest-probability concept is i.
std::vector<int> ConceptFrequencies(const linalg::Matrix& distributions);

/// Result of a denoising pass.
struct DenoiseResult {
  /// Positions (into the original vocabulary) of the retained concepts.
  std::vector<int> kept_positions;
  /// The denoised vocabulary C'.
  data::ConceptVocab vocab;
  /// f(c_i) for every original concept (diagnostics / tests).
  std::vector<int> frequencies;
};

/// \brief The frequency-band concept filter of §3.3.2 (Eq. 4-5).
///
/// A concept is discarded when its argmax frequency falls outside
/// [0.5 * n/m, 0.5 * n]: too rare means the concept does not occur in the
/// dataset (spurious matches only), too common means it would declare most
/// of the dataset mutually similar. If the filter would discard
/// everything (degenerate inputs), the original vocabulary is returned
/// unchanged and `kept_positions` lists all positions — a deviation only
/// reachable on inputs the paper does not encounter.
DenoiseResult DenoiseConcepts(const linalg::Matrix& distributions,
                              const data::ConceptVocab& vocab);

/// \brief The clustering alternative evaluated in Table 2 rows 8-12
/// (UHSCM_cN): k-means over concept score columns; each cluster becomes
/// one merged pseudo-concept whose per-image score is the mean of its
/// members' scores.
///
/// \param scores raw n x m VLP score matrix (Eq. 1, before softmax).
/// \param num_clusters the N of UHSCM_cN.
/// \returns the n x num_clusters merged score matrix.
Result<linalg::Matrix> ClusterConceptsKMeans(const linalg::Matrix& scores,
                                             int num_clusters, Rng* rng);

}  // namespace uhscm::core

#endif  // UHSCM_CORE_CONCEPT_DENOISER_H_
