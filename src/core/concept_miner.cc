#include "core/concept_miner.h"

#include "common/status.h"
#include "linalg/ops.h"

namespace uhscm::core {

ConceptMiner::ConceptMiner(const vlp::SimulatedVlpModel* vlp,
                           const ConceptMinerOptions& options)
    : vlp_(vlp), options_(options) {
  UHSCM_CHECK(vlp != nullptr, "ConceptMiner: null VLP model");
  UHSCM_CHECK(options_.tau_multiplier > 0.0f,
              "ConceptMiner: tau_multiplier must be positive");
}

linalg::Matrix ConceptMiner::ScoreConcepts(
    const linalg::Matrix& pixels, const data::ConceptVocab& vocab) const {
  UHSCM_CHECK(vocab.size() > 0, "ScoreConcepts: empty vocabulary");
  return vlp_->ScoreImagesAgainstConcepts(pixels, vocab.ids, options_.prompt);
}

linalg::Matrix ConceptMiner::DistributionsFromScores(
    const linalg::Matrix& scores) const {
  const int m = options_.tau_concepts_override > 0
                    ? options_.tau_concepts_override
                    : scores.cols();
  const float tau = options_.tau_multiplier * static_cast<float>(m);
  return linalg::SoftmaxRows(scores, tau);
}

linalg::Matrix ConceptMiner::MineDistributions(
    const linalg::Matrix& pixels, const data::ConceptVocab& vocab) const {
  return DistributionsFromScores(ScoreConcepts(pixels, vocab));
}

}  // namespace uhscm::core
