#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/augment.h"
#include "core/concept_denoiser.h"
#include "core/similarity.h"
#include "linalg/ops.h"

namespace uhscm::core {

UhscmConfig DefaultConfigFor(const std::string& dataset_name, int bits) {
  UhscmConfig config;
  config.bits = bits;
  config.network.bits = bits;
  if (dataset_name == "cifar") {
    config.alpha = 0.2f;
    config.lambda = 0.8f;
    config.gamma = 0.2f;
    config.beta = 0.001f;
  } else if (dataset_name == "nuswide") {
    config.alpha = 0.1f;
    config.lambda = 0.5f;
    config.gamma = 0.2f;
    config.beta = 0.001f;
  } else if (dataset_name == "flickr") {
    config.alpha = 0.3f;
    config.lambda = 0.6f;
    config.gamma = 0.5f;
    config.beta = 0.001f;
  }
  return config;
}

linalg::Matrix UhscmModel::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(network != nullptr, "UhscmModel::Encode: model not trained");
  return network->EncodeBinary(pixels);
}

UhscmTrainer::UhscmTrainer(const vlp::SimulatedVlpModel* vlp,
                           const UhscmConfig& config)
    : vlp_(vlp), config_(config) {
  UHSCM_CHECK(vlp != nullptr, "UhscmTrainer: null VLP model");
}

Result<UhscmTrainer::SimilarityArtifacts> UhscmTrainer::BuildSimilarity(
    const linalg::Matrix& train_pixels, const data::ConceptVocab& vocab,
    Rng* rng) const {
  ConceptMinerOptions miner_options;
  miner_options.tau_multiplier = config_.tau_multiplier;
  miner_options.prompt = config_.prompt;
  ConceptMiner miner(vlp_, miner_options);

  SimilarityArtifacts artifacts;
  switch (config_.similarity_source) {
    case SimilaritySource::kDenoisedConcepts: {
      // Algorithm 1, steps 2-5. The second mining pass pins tau to the
      // original vocabulary size (see ConceptMinerOptions).
      const linalg::Matrix d = miner.MineDistributions(train_pixels, vocab);
      const DenoiseResult denoised = DenoiseConcepts(d, vocab);
      ConceptMinerOptions pinned = miner_options;
      pinned.tau_concepts_override = vocab.size();
      ConceptMiner pinned_miner(vlp_, pinned);
      const linalg::Matrix d_clean =
          pinned_miner.MineDistributions(train_pixels, denoised.vocab);
      artifacts.q = SimilarityFromDistributions(d_clean);
      artifacts.retained_concepts = denoised.vocab.names;
      break;
    }
    case SimilaritySource::kRawConcepts: {
      const linalg::Matrix d = miner.MineDistributions(train_pixels, vocab);
      artifacts.q = SimilarityFromDistributions(d);
      break;
    }
    case SimilaritySource::kImageFeatures: {
      const linalg::Matrix features = vlp_->EncodeImages(train_pixels);
      artifacts.q = linalg::SelfCosine(features);
      // Feature cosines live in [-1, 1]; shift to [0, 1] so lambda keeps
      // the same meaning across similarity sources.
      for (size_t i = 0; i < artifacts.q.size(); ++i) {
        artifacts.q.data()[i] = 0.5f * (1.0f + artifacts.q.data()[i]);
      }
      break;
    }
    case SimilaritySource::kKMeansClusters: {
      const linalg::Matrix scores = miner.ScoreConcepts(train_pixels, vocab);
      Result<linalg::Matrix> merged =
          ClusterConceptsKMeans(scores, config_.kmeans_clusters, rng);
      if (!merged.ok()) return merged.status();
      const linalg::Matrix d =
          miner.DistributionsFromScores(merged.ValueOrDie());
      artifacts.q = SimilarityFromDistributions(d);
      break;
    }
    case SimilaritySource::kAveragePrompts: {
      std::vector<linalg::Matrix> mats;
      for (vlp::PromptTemplate tmpl :
           {vlp::PromptTemplate::kAPhotoOfThe, vlp::PromptTemplate::kThe,
            vlp::PromptTemplate::kItContainsThe}) {
        ConceptMinerOptions opt = miner_options;
        opt.prompt = tmpl;
        ConceptMiner prompt_miner(vlp_, opt);
        const linalg::Matrix d =
            prompt_miner.MineDistributions(train_pixels, vocab);
        const DenoiseResult denoised = DenoiseConcepts(d, vocab);
        opt.tau_concepts_override = vocab.size();
        ConceptMiner pinned_miner(vlp_, opt);
        const linalg::Matrix d_clean =
            pinned_miner.MineDistributions(train_pixels, denoised.vocab);
        mats.push_back(SimilarityFromDistributions(d_clean));
      }
      artifacts.q = AverageSimilarity(mats);
      break;
    }
  }
  return artifacts;
}

Result<UhscmModel> UhscmTrainer::Train(const linalg::Matrix& train_pixels,
                                       const data::ConceptVocab& vocab) const {
  if (train_pixels.rows() < 2) {
    return Status::InvalidArgument("Train: need at least 2 training images");
  }
  Rng rng(config_.seed);

  Result<SimilarityArtifacts> sim =
      BuildSimilarity(train_pixels, vocab, &rng);
  if (!sim.ok()) return sim.status();

  UhscmModel model;
  model.similarity = std::move(sim.ValueOrDie().q);
  model.retained_concepts = std::move(sim.ValueOrDie().retained_concepts);

  model.network = std::make_unique<HashingNetwork>(
      train_pixels.cols(), [&] {
        HashingNetworkOptions net = config_.network;
        net.bits = config_.bits;
        return net;
      }(), &rng);

  nn::SgdOptions sgd_options;
  sgd_options.learning_rate = config_.learning_rate;
  sgd_options.momentum = config_.momentum;
  sgd_options.weight_decay = config_.weight_decay;
  nn::SgdOptimizer optimizer(model.network->model(), sgd_options);

  UhscmLossOptions loss_options;
  loss_options.alpha = config_.alpha;
  loss_options.beta = config_.beta;
  loss_options.gamma = config_.gamma;
  loss_options.lambda = config_.lambda;
  loss_options.disable_contrastive =
      config_.contrastive_mode == ContrastiveMode::kNone;

  const int n = train_pixels.rows();
  const int batch = std::min(config_.batch_size, n);
  std::vector<int> order(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  AugmentOptions augment_options;  // used only in kOriginal mode
  // Patience-based convergence: SGD epoch losses are noisy, so require
  // several consecutive epochs without meaningful improvement over the
  // best loss seen before stopping.
  double best_loss = std::numeric_limits<double>::max();
  int stall_epochs = 0;
  constexpr int kPatience = 4;

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int steps = 0;

    for (int start = 0; start + 2 <= n; start += batch) {
      const int end = std::min(start + batch, n);
      std::vector<int> batch_idx(order.begin() + start, order.begin() + end);
      const int t = static_cast<int>(batch_idx.size());
      if (t < 2) continue;

      const linalg::Matrix x = train_pixels.SelectRows(batch_idx);
      linalg::Matrix q_batch(t, t);
      for (int i = 0; i < t; ++i) {
        for (int j = 0; j < t; ++j) {
          q_batch(i, j) = model.similarity(batch_idx[static_cast<size_t>(i)],
                                           batch_idx[static_cast<size_t>(j)]);
        }
      }

      optimizer.ZeroGrad();
      double step_loss = 0.0;
      if (config_.contrastive_mode == ContrastiveMode::kOriginal) {
        // UHSCM_CL: Ls + quantization on view 1, J_c across two views.
        linalg::Matrix x2 = AugmentPixels(x, augment_options, &rng);
        linalg::Matrix stacked(2 * t, x.cols());
        for (int i = 0; i < t; ++i) {
          std::copy(x.Row(i), x.Row(i) + x.cols(), stacked.Row(i));
          std::copy(x2.Row(i), x2.Row(i) + x.cols(), stacked.Row(t + i));
        }
        linalg::Matrix z_all = model.network->Forward(stacked);

        linalg::Matrix z1(t, z_all.cols());
        for (int i = 0; i < t; ++i) {
          std::copy(z_all.Row(i), z_all.Row(i) + z_all.cols(), z1.Row(i));
        }
        UhscmLossOptions base = loss_options;
        base.disable_contrastive = true;  // Lc replaced by J_c
        LossAndGrad l2 = UhscmBatchLoss(z1, q_batch, base);
        LossAndGrad jc =
            OriginalContrastiveLoss(z_all, t, loss_options.gamma);

        linalg::Matrix dz_all = jc.dz;
        dz_all.Scale(loss_options.alpha);
        for (int i = 0; i < t; ++i) {
          float* dst = dz_all.Row(i);
          const float* src = l2.dz.Row(i);
          for (int c = 0; c < dz_all.cols(); ++c) dst[c] += src[c];
        }
        step_loss = l2.loss + loss_options.alpha * jc.loss;
        model.network->Backward(dz_all);
      } else {
        linalg::Matrix z = model.network->Forward(x);
        LossAndGrad lg = UhscmBatchLoss(z, q_batch, loss_options);
        step_loss = lg.loss;
        model.network->Backward(lg.dz);
      }
      optimizer.Step();
      epoch_loss += step_loss;
      ++steps;
    }

    epoch_loss /= std::max(steps, 1);
    model.epoch_losses.push_back(epoch_loss);
    UHSCM_LOG(Debug) << "epoch " << epoch << " loss " << epoch_loss;

    if (best_loss - epoch_loss >
        config_.convergence_tol * std::fabs(best_loss)) {
      best_loss = epoch_loss;
      stall_epochs = 0;
    } else if (++stall_epochs >= kPatience) {
      break;
    }
  }
  return model;
}

}  // namespace uhscm::core
