#ifndef UHSCM_CORE_CONCEPT_MINER_H_
#define UHSCM_CORE_CONCEPT_MINER_H_

#include "data/concept_vocab.h"
#include "linalg/matrix.h"
#include "vlp/simulated_vlp.h"

namespace uhscm::core {

/// Options for concept mining (§3.3.1).
struct ConceptMinerOptions {
  /// Softmax temperature multiplier: tau = tau_multiplier * m where m is
  /// the vocabulary size. The paper sweeps 1m..4m and settles on 3m
  /// (§4.6).
  float tau_multiplier = 3.0f;
  /// When > 0, tau uses this concept count instead of the current
  /// vocabulary size. The trainer pins it to the *original* collected
  /// vocabulary size so that re-mining after denoising keeps the same
  /// temperature (otherwise dropping concepts would soften the softmax
  /// and partially undo the denoising gain).
  int tau_concepts_override = 0;
  vlp::PromptTemplate prompt = vlp::PromptTemplate::kAPhotoOfThe;
};

/// \brief Mines per-image concept distributions with a VLP model through
/// prompting (Eq. 1-2).
///
/// For images X and a concept vocabulary C, computes the n x m score
/// matrix s_ij = F_VLP(x_i, prompt(c_j)) and turns each row into a
/// distribution d_i by a temperature softmax with tau = tau_multiplier*m.
class ConceptMiner {
 public:
  ConceptMiner(const vlp::SimulatedVlpModel* vlp,
               const ConceptMinerOptions& options = {});

  /// Raw VLP scores (Eq. 1), n x m in [0, 1].
  linalg::Matrix ScoreConcepts(const linalg::Matrix& pixels,
                               const data::ConceptVocab& vocab) const;

  /// Concept distributions (Eq. 2): row-softmax of the scores with
  /// tau = tau_multiplier * vocab.size(). Rows sum to 1.
  linalg::Matrix MineDistributions(const linalg::Matrix& pixels,
                                   const data::ConceptVocab& vocab) const;

  /// Softmax-only step, exposed so callers holding a precomputed score
  /// matrix (e.g. the denoiser, which re-normalizes after dropping
  /// columns) can reuse it.
  linalg::Matrix DistributionsFromScores(const linalg::Matrix& scores) const;

  const ConceptMinerOptions& options() const { return options_; }

 private:
  const vlp::SimulatedVlpModel* vlp_;
  ConceptMinerOptions options_;
};

}  // namespace uhscm::core

#endif  // UHSCM_CORE_CONCEPT_MINER_H_
