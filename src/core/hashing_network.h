#ifndef UHSCM_CORE_HASHING_NETWORK_H_
#define UHSCM_CORE_HASHING_NETWORK_H_

#include <memory>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "nn/sequential.h"

namespace uhscm::core {

/// Architecture of the hashing network: an MLP backbone standing in for
/// the paper's VGG19 with its final layer replaced by a k-dimensional
/// fully-connected layer under tanh (§3.2).
struct HashingNetworkOptions {
  int hidden1 = 512;
  int hidden2 = 256;
  int bits = 64;
};

/// \brief The hashing network H(.; W): pixels -> codes in [-1, 1]^k.
class HashingNetwork {
 public:
  HashingNetwork(int input_dim, const HashingNetworkOptions& options,
                 Rng* rng);

  /// Real-valued codes Z in [-1,1]^{n x k} (training path — caches
  /// activations for Backward()).
  linalg::Matrix Forward(const linalg::Matrix& pixels);

  /// Backpropagates dL/dZ, accumulating parameter gradients.
  void Backward(const linalg::Matrix& grad_codes);

  /// Binary codes B = sgn(Z) in {-1, +1}^{n x k}.
  linalg::Matrix EncodeBinary(const linalg::Matrix& pixels);

  nn::Sequential* model() { return &model_; }
  int bits() const { return options_.bits; }
  int input_dim() const { return input_dim_; }
  const HashingNetworkOptions& options() const { return options_; }

 private:
  int input_dim_;
  HashingNetworkOptions options_;
  nn::Sequential model_;
};

}  // namespace uhscm::core

#endif  // UHSCM_CORE_HASHING_NETWORK_H_
