#include "core/similarity.h"

#include <algorithm>

#include "common/status.h"
#include "linalg/ops.h"

namespace uhscm::core {

linalg::Matrix SimilarityFromDistributions(const linalg::Matrix& d) {
  return linalg::SelfCosine(d);
}

linalg::Matrix AverageSimilarity(const std::vector<linalg::Matrix>& mats) {
  UHSCM_CHECK(!mats.empty(), "AverageSimilarity: empty input");
  linalg::Matrix out = mats[0];
  for (size_t i = 1; i < mats.size(); ++i) {
    out.Add(mats[i]);
  }
  out.Scale(1.0f / static_cast<float>(mats.size()));
  return out;
}

SimilarityStats ComputeSimilarityStats(const linalg::Matrix& q,
                                       float threshold) {
  SimilarityStats stats;
  if (q.size() == 0) return stats;
  stats.min = q.data()[0];
  stats.max = q.data()[0];
  double sum = 0.0;
  int64_t above = 0;
  int64_t off_diag = 0;
  for (int i = 0; i < q.rows(); ++i) {
    const float* row = q.Row(i);
    for (int j = 0; j < q.cols(); ++j) {
      stats.min = std::min(stats.min, row[j]);
      stats.max = std::max(stats.max, row[j]);
      sum += row[j];
      if (i != j) {
        ++off_diag;
        if (row[j] >= threshold) ++above;
      }
    }
  }
  stats.mean = static_cast<float>(sum / static_cast<double>(q.size()));
  stats.frac_above_threshold =
      off_diag > 0 ? static_cast<float>(above) / static_cast<float>(off_diag)
                   : 0.0f;
  return stats;
}

}  // namespace uhscm::core
