#include "core/losses.h"

#include <cmath>
#include <vector>

#include "common/status.h"
#include "linalg/ops.h"

namespace uhscm::core {

namespace {

/// Row-normalizes z; returns the normalized matrix and per-row norms.
linalg::Matrix RowNormalize(const linalg::Matrix& z,
                            std::vector<float>* norms) {
  linalg::Matrix zhat = z;
  norms->assign(static_cast<size_t>(z.rows()), 0.0f);
  for (int i = 0; i < z.rows(); ++i) {
    float* row = zhat.Row(i);
    const float norm = std::max(linalg::Norm2(row, z.cols()), 1e-12f);
    (*norms)[static_cast<size_t>(i)] = norm;
    const float inv = 1.0f / norm;
    for (int c = 0; c < z.cols(); ++c) row[c] *= inv;
  }
  return zhat;
}

/// Shared backward: given zhat (row-normalized z), row norms, and
/// G = dL/dH with H = zhat zhat^T, returns dL/dZ.
linalg::Matrix CosineBackwardImpl(const linalg::Matrix& zhat,
                                  const std::vector<float>& norms,
                                  const linalg::Matrix& g) {
  // dL/dzhat = (G + G^T) zhat.
  linalg::Matrix gsym = g;
  for (int i = 0; i < g.rows(); ++i) {
    for (int j = 0; j < g.cols(); ++j) {
      gsym(i, j) = g(i, j) + g(j, i);
    }
  }
  linalg::Matrix dzhat = linalg::MatMul(gsym, zhat);
  // Project through the normalization Jacobian:
  // dL/dz_i = (dzhat_i - (dzhat_i . zhat_i) zhat_i) / ||z_i||.
  linalg::Matrix dz(zhat.rows(), zhat.cols());
  for (int i = 0; i < zhat.rows(); ++i) {
    const float* zh = zhat.Row(i);
    const float* dzh = dzhat.Row(i);
    const float dot = linalg::Dot(dzh, zh, zhat.cols());
    const float inv_norm = 1.0f / norms[static_cast<size_t>(i)];
    float* out = dz.Row(i);
    for (int c = 0; c < zhat.cols(); ++c) {
      out[c] = (dzh[c] - dot * zh[c]) * inv_norm;
    }
  }
  return dz;
}

}  // namespace

linalg::Matrix CosineSimilarityBackward(const linalg::Matrix& z,
                                        const linalg::Matrix& g) {
  UHSCM_CHECK(g.rows() == z.rows() && g.cols() == z.rows(),
              "CosineSimilarityBackward: G must be n x n");
  std::vector<float> norms;
  const linalg::Matrix zhat = RowNormalize(z, &norms);
  return CosineBackwardImpl(zhat, norms, g);
}

LossAndGrad UhscmBatchLoss(const linalg::Matrix& z,
                           const linalg::Matrix& q_batch,
                           const UhscmLossOptions& options) {
  const int t = z.rows();
  UHSCM_CHECK(q_batch.rows() == t && q_batch.cols() == t,
              "UhscmBatchLoss: Q sub-matrix shape mismatch");
  UHSCM_CHECK(t >= 2, "UhscmBatchLoss: batch must have >= 2 codes");

  std::vector<float> norms;
  const linalg::Matrix zhat = RowNormalize(z, &norms);
  const linalg::Matrix h = linalg::MatMulTransB(zhat, zhat);

  LossAndGrad out;
  linalg::Matrix g(t, t);  // dL/dH

  // --- Ls: (1/t^2) sum_ij (h_ij - q_ij)^2 (Eq. 7) ---
  const double inv_t2 = 1.0 / (static_cast<double>(t) * t);
  double ls = 0.0;
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < t; ++j) {
      const double diff = static_cast<double>(h(i, j)) - q_batch(i, j);
      ls += diff * diff;
      g(i, j) += static_cast<float>(2.0 * inv_t2 * diff);
    }
  }
  ls *= inv_t2;
  out.loss += ls;

  // --- Lc: modified contrastive (Eq. 8 with -log; see header note) ---
  if (!options.disable_contrastive && options.alpha != 0.0f) {
    const double gamma = options.gamma;
    double lc = 0.0;
    int anchors = 0;
    for (int i = 0; i < t; ++i) {
      std::vector<int> psi;
      std::vector<int> phi;
      for (int j = 0; j < t; ++j) {
        if (j == i) continue;
        if (q_batch(i, j) >= options.lambda) {
          psi.push_back(j);
        } else {
          phi.push_back(j);
        }
      }
      if (psi.empty() || phi.empty()) continue;
      ++anchors;

      // exp(h_il / gamma) for negatives, with a shared max-shift for
      // numerical stability across the anchor's row.
      double row_max = -2.0;
      for (int j : psi) row_max = std::max(row_max, static_cast<double>(h(i, j)));
      for (int l : phi) row_max = std::max(row_max, static_cast<double>(h(i, l)));

      double s_neg = 0.0;
      std::vector<double> e_neg(phi.size());
      for (size_t u = 0; u < phi.size(); ++u) {
        e_neg[u] = std::exp((static_cast<double>(h(i, phi[u])) - row_max) / gamma);
        s_neg += e_neg[u];
      }

      // Weight alpha / (t * |Psi_i|): alpha from Eq. (11), 1/t from the
      // batch mean, 1/|Psi_i| from Eq. (8).
      const double w =
          options.alpha / (static_cast<double>(psi.size()) * t);
      for (int j : psi) {
        const double e_pos =
            std::exp((static_cast<double>(h(i, j)) - row_max) / gamma);
        const double denom = e_pos + s_neg;
        const double p = e_pos / denom;
        lc += -w * std::log(std::max(p, 1e-300));
        // d(-log p)/dh_ij = -(1 - p)/gamma.
        g(i, j) += static_cast<float>(-w * (1.0 - p) / gamma);
        // d(-log p)/dh_il = e_l / denom / gamma for negatives.
        for (size_t u = 0; u < phi.size(); ++u) {
          g(i, phi[u]) += static_cast<float>(w * e_neg[u] / denom / gamma);
        }
      }
    }
    (void)anchors;
    out.loss += lc;
  }

  // --- quantization: beta * (1/t) sum_i ||z_i - sgn(z_i)||^2 ---
  out.dz = CosineBackwardImpl(zhat, norms, g);
  if (options.beta != 0.0f) {
    const double inv_t = 1.0 / static_cast<double>(t);
    double lq = 0.0;
    for (int i = 0; i < t; ++i) {
      const float* zi = z.Row(i);
      float* dzi = out.dz.Row(i);
      for (int c = 0; c < z.cols(); ++c) {
        const float b = zi[c] < 0.0f ? -1.0f : 1.0f;
        const float diff = zi[c] - b;
        lq += static_cast<double>(diff) * diff;
        dzi[c] += static_cast<float>(2.0 * options.beta * inv_t * diff);
      }
    }
    out.loss += options.beta * lq * inv_t;
  }
  return out;
}

LossAndGrad OriginalContrastiveLoss(const linalg::Matrix& z_views, int t,
                                    float gamma) {
  UHSCM_CHECK(z_views.rows() == 2 * t,
              "OriginalContrastiveLoss: expected 2t stacked rows");
  UHSCM_CHECK(t >= 2, "OriginalContrastiveLoss: need >= 2 images");

  std::vector<float> norms;
  const linalg::Matrix zhat = RowNormalize(z_views, &norms);
  const linalg::Matrix h = linalg::MatMulTransB(zhat, zhat);

  linalg::Matrix g(2 * t, 2 * t);
  double loss = 0.0;
  const double inv_t = 1.0 / static_cast<double>(t);
  for (int i = 0; i < t; ++i) {
    const int pos = t + i;
    // Negatives: both views of every k != i.
    double row_max = static_cast<double>(h(i, pos));
    for (int k = 0; k < t; ++k) {
      if (k == i) continue;
      row_max = std::max(row_max, static_cast<double>(h(i, k)));
      row_max = std::max(row_max, static_cast<double>(h(i, t + k)));
    }
    const double e_pos =
        std::exp((static_cast<double>(h(i, pos)) - row_max) / gamma);
    double s_neg = 0.0;
    for (int k = 0; k < t; ++k) {
      if (k == i) continue;
      s_neg += std::exp((static_cast<double>(h(i, k)) - row_max) / gamma);
      s_neg += std::exp((static_cast<double>(h(i, t + k)) - row_max) / gamma);
    }
    const double denom = e_pos + s_neg;
    const double p = e_pos / denom;
    loss += -inv_t * std::log(std::max(p, 1e-300));

    g(i, pos) += static_cast<float>(-inv_t * (1.0 - p) / gamma);
    for (int k = 0; k < t; ++k) {
      if (k == i) continue;
      const double e1 =
          std::exp((static_cast<double>(h(i, k)) - row_max) / gamma);
      const double e2 =
          std::exp((static_cast<double>(h(i, t + k)) - row_max) / gamma);
      g(i, k) += static_cast<float>(inv_t * e1 / denom / gamma);
      g(i, t + k) += static_cast<float>(inv_t * e2 / denom / gamma);
    }
  }

  LossAndGrad out;
  out.loss = loss;
  out.dz = CosineBackwardImpl(zhat, norms, g);
  return out;
}

LossAndGrad MaskedL2SimilarityLoss(const linalg::Matrix& z,
                                   const linalg::Matrix& s_batch,
                                   const linalg::Matrix& mask, float beta) {
  const int t = z.rows();
  UHSCM_CHECK(s_batch.rows() == t && s_batch.cols() == t,
              "MaskedL2SimilarityLoss: S shape mismatch");
  UHSCM_CHECK(mask.rows() == t && mask.cols() == t,
              "MaskedL2SimilarityLoss: mask shape mismatch");

  std::vector<float> norms;
  const linalg::Matrix zhat = RowNormalize(z, &norms);
  const linalg::Matrix h = linalg::MatMulTransB(zhat, zhat);

  double mask_sum = 0.0;
  for (size_t i = 0; i < mask.size(); ++i) mask_sum += mask.data()[i];
  const double inv_mass = mask_sum > 0.0 ? 1.0 / mask_sum : 0.0;

  linalg::Matrix g(t, t);
  double loss = 0.0;
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < t; ++j) {
      const float w = mask(i, j);
      if (w == 0.0f) continue;
      const double diff = static_cast<double>(h(i, j)) - s_batch(i, j);
      loss += w * diff * diff * inv_mass;
      g(i, j) += static_cast<float>(2.0 * w * diff * inv_mass);
    }
  }

  LossAndGrad out;
  out.loss = loss;
  out.dz = CosineBackwardImpl(zhat, norms, g);

  if (beta != 0.0f) {
    const double inv_t = 1.0 / static_cast<double>(t);
    double lq = 0.0;
    for (int i = 0; i < t; ++i) {
      const float* zi = z.Row(i);
      float* dzi = out.dz.Row(i);
      for (int c = 0; c < z.cols(); ++c) {
        const float b = zi[c] < 0.0f ? -1.0f : 1.0f;
        const float diff = zi[c] - b;
        lq += static_cast<double>(diff) * diff;
        dzi[c] += static_cast<float>(2.0 * beta * inv_t * diff);
      }
    }
    out.loss += beta * lq * inv_t;
  }
  return out;
}

LossAndGrad TripletCosineLoss(const linalg::Matrix& z,
                              const std::vector<Triplet>& triplets,
                              float margin, float beta) {
  const int t = z.rows();
  std::vector<float> norms;
  const linalg::Matrix zhat = RowNormalize(z, &norms);
  const linalg::Matrix h = linalg::MatMulTransB(zhat, zhat);

  linalg::Matrix g(t, t);
  double loss = 0.0;
  const double inv_n =
      triplets.empty() ? 0.0 : 1.0 / static_cast<double>(triplets.size());
  for (const Triplet& tr : triplets) {
    const double viol = margin - static_cast<double>(h(tr.anchor, tr.positive)) +
                        static_cast<double>(h(tr.anchor, tr.negative));
    if (viol <= 0.0) continue;
    loss += viol * inv_n;
    g(tr.anchor, tr.positive) += static_cast<float>(-inv_n);
    g(tr.anchor, tr.negative) += static_cast<float>(inv_n);
  }

  LossAndGrad out;
  out.loss = loss;
  out.dz = CosineBackwardImpl(zhat, norms, g);

  if (beta != 0.0f && t > 0) {
    const double inv_t = 1.0 / static_cast<double>(t);
    double lq = 0.0;
    for (int i = 0; i < t; ++i) {
      const float* zi = z.Row(i);
      float* dzi = out.dz.Row(i);
      for (int c = 0; c < z.cols(); ++c) {
        const float b = zi[c] < 0.0f ? -1.0f : 1.0f;
        const float diff = zi[c] - b;
        lq += static_cast<double>(diff) * diff;
        dzi[c] += static_cast<float>(2.0 * beta * inv_t * diff);
      }
    }
    out.loss += beta * lq * inv_t;
  }
  return out;
}

}  // namespace uhscm::core
