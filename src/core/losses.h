#ifndef UHSCM_CORE_LOSSES_H_
#define UHSCM_CORE_LOSSES_H_

#include "linalg/matrix.h"

namespace uhscm::core {

/// Loss value plus the gradient with respect to the code matrix that
/// produced it.
struct LossAndGrad {
  double loss = 0.0;
  linalg::Matrix dz;
};

/// Hyper-parameters of the UHSCM objective (Eq. 11).
struct UhscmLossOptions {
  float alpha = 0.2f;   ///< weight of the modified contrastive loss
  float beta = 0.001f;  ///< weight of the quantization loss
  float gamma = 0.2f;   ///< contrastive temperature
  float lambda = 0.8f;  ///< similarity threshold defining Psi_i
  /// Drop the modified-contrastive term entirely (UHSCM_w/o_MCL).
  bool disable_contrastive = false;
};

/// Given the gradient G = dL/dH of a loss over the cosine-similarity
/// matrix H(i,j) = cos(z_i, z_j), returns dL/dZ. The Jacobian of the row
/// normalization projects out the component along each normalized row, so
/// diagonal entries of G (cos(z_i,z_i) == 1 identically) contribute
/// nothing, as they must.
linalg::Matrix CosineSimilarityBackward(const linalg::Matrix& z,
                                        const linalg::Matrix& g);

/// \brief The full UHSCM batch objective (Eq. 11):
///   L = Ls + beta * Lq + alpha * Lc
/// with Ls the mean squared error between code cosine similarities and the
/// semantic similarity sub-matrix `q_batch` (Eq. 7), Lq the quantization
/// penalty ||z - sgn(z)||^2, and Lc the modified contrastive term (Eq. 8)
/// over within-batch positive sets Psi_i = {j != i : q_ij >= lambda}.
///
/// NOTE on Eq. (8): minimizing the fraction exactly as printed in the
/// paper would *reduce* the similarity of positive pairs — the opposite of
/// the behaviour the surrounding text describes ("the Hamming similarity
/// between b_i and b_j will be larger..."). Like every InfoNCE-family
/// loss (and the CIB loss Eq. 10 references), the intended term is the
/// negative log of that fraction; we implement -log, which reproduces the
/// described behaviour and the ablation ordering.
///
/// \param z t x k real-valued batch codes (network outputs in [-1,1]).
/// \param q_batch t x t semantic similarity sub-matrix for the batch.
LossAndGrad UhscmBatchLoss(const linalg::Matrix& z,
                           const linalg::Matrix& q_batch,
                           const UhscmLossOptions& options);

/// \brief The original CIB contrastive loss J_c (Eq. 10) on two views,
/// used by the UHSCM_CL ablation and by the CIB baseline.
///
/// `z_views` stacks the two views: rows [0, t) are view 1, rows [t, 2t)
/// are view 2. For anchor i the positive is t+i and the negatives are
/// both views of every other image. Implemented as -log(...) (see note
/// above). Returns the gradient for the full 2t x k stack.
LossAndGrad OriginalContrastiveLoss(const linalg::Matrix& z_views, int t,
                                    float gamma);

/// \brief Masked L2 similarity loss used by the SSDH-style baselines:
///   L = sum_ij mask_ij (cos(z_i,z_j) - s_ij)^2 / sum_ij mask_ij
/// plus beta * quantization.
LossAndGrad MaskedL2SimilarityLoss(const linalg::Matrix& z,
                                   const linalg::Matrix& s_batch,
                                   const linalg::Matrix& mask, float beta);

/// \brief Cosine triplet loss for the UTH baseline:
///   mean over triplets of max(0, margin - cos(z_a,z_p) + cos(z_a,z_n)).
/// Triplets index into rows of z.
struct Triplet {
  int anchor;
  int positive;
  int negative;
};
LossAndGrad TripletCosineLoss(const linalg::Matrix& z,
                              const std::vector<Triplet>& triplets,
                              float margin, float beta);

}  // namespace uhscm::core

#endif  // UHSCM_CORE_LOSSES_H_
