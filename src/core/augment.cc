#include "core/augment.h"

#include <cmath>

#include "linalg/ops.h"

namespace uhscm::core {

linalg::Matrix AugmentPixels(const linalg::Matrix& pixels,
                             const AugmentOptions& options, Rng* rng) {
  linalg::Matrix out = pixels;
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.Row(i);
    const float jitter = 1.0f + static_cast<float>(rng->Uniform(
                                    -options.intensity_jitter,
                                    options.intensity_jitter));
    for (int c = 0; c < out.cols(); ++c) {
      if (options.dropout > 0.0f && rng->Bernoulli(options.dropout)) {
        row[c] = 0.0f;
        continue;
      }
      row[c] = jitter * row[c] +
               options.noise * static_cast<float>(rng->Normal()) /
                   std::sqrt(static_cast<float>(out.cols()));
    }
  }
  linalg::NormalizeRowsL2(&out);
  return out;
}

}  // namespace uhscm::core
