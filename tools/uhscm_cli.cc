// uhscm_cli — command-line front end over the library: train a model on
// a synthetic corpus, persist the artifacts, inspect them, and serve
// retrieval queries — the minimal ops loop of a deployment.
//
// Subcommands:
//   train  --dataset=cifar|nuswide|flickr --bits=K --seed=N --scale=F
//          --model=PATH --codes=PATH
//       Builds the synthetic corpus, trains UHSCM, writes the hashing
//       network and the packed database codes.
//   info   --file=PATH
//       Prints what an artifact file contains.
//   eval   --dataset=... --bits=K --seed=N --scale=F --model=PATH
//       Regenerates the same corpus (same seed), reloads the model, and
//       reports MAP / P@10 under the paper's protocol.
//   query  --dataset=... --seed=N --scale=F --model=PATH --codes=PATH
//          [--topk=10] [--queries=5]
//       Reloads model + codes and prints top-k results for sample
//       queries with relevance flags.
//   dedup  --codes=PATH [--k=K] [--radius=R] [--link=radius|best]
//          [--threads=N] [--tile=N] [--json-out=PATH]
//       Offline corpus×corpus self-join over a packed-codes artifact
//       (v1 or v2 snapshot; tombstoned rows never join). --k=K reports
//       each row's K nearest neighbors (throughput, prune rate, mean
//       nearest distance); --radius=R groups rows into duplicate
//       clusters — transitive closure of pairs within R by default,
//       or only reciprocal best matches with --link=best. At least one
//       of --k / --radius is required. --tile overrides the
//       cache-sized scan block (0 = auto); --json-out writes the full
//       report (stats + group membership) as JSON.
//   serve  --codes=PATH [--model=PATH --dataset=... --seed=N --scale=F]
//          [--shards=N] [--threads=N] [--backend=scan|mih]
//          [--replicas=N] [--batch-max=B] [--batch-timeout-us=T]
//          [--route=rr|least] [--topk=K] [--queries=N]
//          [--append=PATH] [--delete-ids=1,5,10-20] [--compact]
//          [--compact-threshold=F] [--save-snapshot=PATH]
//       Hydrates N QueryEngine replicas from the packed codes (legacy v1
//       artifact or v2 serving snapshot) behind the async request
//       pipeline — bounded admission queue, adaptive batcher (flush at B
//       queries or T microseconds, whichever first), load-aware router —
//       and replays a query stream through it twice (cold, then
//       cache-hot), printing QPS, latency percentiles, cache hit rate,
//       queue depth, flush reasons, and time-in-queue percentiles. The
//       query stream is loaded/encoded once and its packed buffer reused
//       across all passes. Queries are encoded from the synthetic query
//       split when --model is given, otherwise sampled from the database
//       codes themselves.
//
//       Admin ops run after the replay passes and fan out to every
//       replica: --append=PATH appends a packed-code artifact to the
//       live corpus (routed to the least-full shard), --delete-ids
//       tombstones global ids, and each bumps the corpus epoch — a third
//       replay pass then shows the epoch-keyed caches re-filling.
//       --compact reclaims tombstoned rows (shard rebuild + locator
//       remap, global ids unchanged) on every replica;
//       --compact-threshold=F turns on auto-compaction whenever a
//       shard's dead fraction reaches F. Hydration always compacts a
//       snapshot's dead rows, so a delete-heavy snapshot reloads
//       reclaimed either way.
//       --save-snapshot persists the mutated corpus as a versioned v2
//       snapshot (epoch + tombstones) that future serve runs reload with
//       identical ids and results.
//
// The corpus is synthetic and seed-determined, so "the same dataset" is
// reproducible from (dataset, seed, scale) alone — no data files needed.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/trainer.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "eval/retrieval_eval.h"
#include "index/hamming_kernels.h"
#include "index/linear_scan.h"
#include "index/self_join.h"
#include "io/serialize.h"
#include "serve/batcher.h"
#include "serve/replica_set.h"
#include "serve/request_queue.h"
#include "serve/router.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "vlp/simulated_vlp.h"

namespace uhscm::cli {
namespace {

struct Flags {
  std::string dataset = "cifar";
  int bits = 64;
  uint64_t seed = 2023;
  double scale = 1.0;
  std::string model;
  std::string codes;
  std::string file;
  int topk = 10;
  int queries = 5;
  // Dedup (all-pairs self-join over a packed-codes artifact).
  int join_k = 0;      // 0 = no top-k join
  int radius = -1;     // < 0 = no radius join / dedup grouping
  std::string link = "radius";  // "radius" | "best" (reciprocal best match)
  int tile = 0;        // 0 = auto (cache-sized, PickCodeBlockSize)
  std::string json_out;
  int shards = 4;
  int threads = 0;  // 0 = hardware concurrency (divided across replicas)
  int replicas = 1;
  int batch_max = 32;
  int64_t batch_timeout_us = 200;
  std::string route = "least";
  std::string backend = "scan";
  std::string append_file;
  std::string delete_ids;
  std::string save_snapshot;
  double compact_threshold = 0.0;  // 0 = auto-compaction off
  bool compact = false;
  // Observability (serve): metrics JSON dump path (periodic + on-exit),
  // Chrome trace output, 1-in-N request sampling, periodic one-line
  // stats report, and the slow-query log threshold.
  std::string metrics_json;
  std::string trace_out;
  int trace_sample = 0;  // 0 = tracing off; N traces 1 in N requests
  int64_t report_interval_ms = 0;  // 0 = no periodic report
  double slow_query_ms = 0.0;      // 0 = no slow-query log
  // Fault tolerance (serve): per-request deadline, retry budget, hedged
  // requests, and the replica supervisor.
  double deadline_ms = 0.0;    // 0 = no deadline
  int retries = 3;             // total dispatch attempts per batch
  double hedge_budget = 0.0;   // 0 = hedging off
  int64_t hedge_delay_us = 0;  // 0 = auto (live search p99)
  bool supervise = false;      // respawn killed replicas automatically
};

int Usage() {
  std::fprintf(stderr,
               "usage: uhscm_cli <train|info|eval|query|dedup|serve> "
               "[--dataset=...] [--bits=K] [--seed=N] [--scale=F] "
               "[--model=PATH] [--codes=PATH] [--file=PATH] [--topk=K] "
               "[--k=K] [--radius=R] [--link=radius|best] [--tile=N] "
               "[--json-out=PATH] "
               "[--queries=N] [--shards=N] [--threads=N] [--replicas=N] "
               "[--batch-max=B] [--batch-timeout-us=T] [--route=rr|least] "
               "[--backend=scan|mih] [--append=PATH] "
               "[--delete-ids=1,5,10-20] [--compact] "
               "[--compact-threshold=F] [--save-snapshot=PATH] "
               "[--metrics-json=PATH] [--trace-out=PATH] "
               "[--trace-sample=1/N] [--report-interval-ms=N] "
               "[--slow-query-ms=F] [--deadline-ms=F] [--retries=N] "
               "[--hedge-budget=F] [--hedge-delay-us=N] [--supervise]\n");
  return 2;
}

/// Parses "1,5,10-20" into the listed ids (ranges inclusive). Returns
/// false on malformed input — including empty range endpoints, so a
/// typo like "-5" is rejected instead of silently expanding to 0-5.
bool ParseIdList(const std::string& spec, std::vector<int>* ids) {
  // Sanity cap: a delete list bigger than this is a malformed range, not
  // an admin op.
  constexpr long kMaxIds = 1L << 24;
  // Parses one non-negative id that must also survive the int cast —
  // an overflowing value must be rejected, not wrapped onto some other
  // row's id.
  auto parse_id = [](const std::string& text, long* out) {
    if (text.empty()) return false;
    char* end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (*end != '\0' || value < 0 ||
        value > static_cast<long>(std::numeric_limits<int>::max())) {
      return false;
    }
    *out = value;
    return true;
  };
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    if (item.empty()) return false;
    const size_t dash = item.find('-');
    if (dash == std::string::npos) {
      long id = 0;
      if (!parse_id(item, &id)) return false;
      ids->push_back(static_cast<int>(id));
    } else {
      long lo = 0, hi = 0;
      if (!parse_id(item.substr(0, dash), &lo) ||
          !parse_id(item.substr(dash + 1), &hi) || hi < lo) {
        return false;
      }
      if (hi - lo + 1 > kMaxIds - static_cast<long>(ids->size())) {
        return false;
      }
      for (long id = lo; id <= hi; ++id) ids->push_back(static_cast<int>(id));
    }
    if (static_cast<long>(ids->size()) > kMaxIds) return false;
    pos = comma + 1;
  }
  return !ids->empty();
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--dataset=")) {
      flags->dataset = arg.substr(10);
    } else if (StartsWith(arg, "--bits=")) {
      flags->bits = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--seed=")) {
      flags->seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (StartsWith(arg, "--scale=")) {
      flags->scale = std::atof(arg.c_str() + 8);
    } else if (StartsWith(arg, "--model=")) {
      flags->model = arg.substr(8);
    } else if (StartsWith(arg, "--codes=")) {
      flags->codes = arg.substr(8);
    } else if (StartsWith(arg, "--file=")) {
      flags->file = arg.substr(7);
    } else if (StartsWith(arg, "--topk=")) {
      flags->topk = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--k=")) {
      flags->join_k = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--radius=")) {
      flags->radius = std::atoi(arg.c_str() + 9);
    } else if (StartsWith(arg, "--link=")) {
      flags->link = arg.substr(7);
      if (flags->link != "radius" && flags->link != "best") {
        std::fprintf(stderr, "--link must be radius or best, got %s\n",
                     flags->link.c_str());
        return false;
      }
    } else if (StartsWith(arg, "--tile=")) {
      flags->tile = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--json-out=")) {
      flags->json_out = arg.substr(11);
    } else if (StartsWith(arg, "--queries=")) {
      flags->queries = std::atoi(arg.c_str() + 10);
    } else if (StartsWith(arg, "--shards=")) {
      flags->shards = std::atoi(arg.c_str() + 9);
    } else if (StartsWith(arg, "--threads=")) {
      flags->threads = std::atoi(arg.c_str() + 10);
    } else if (StartsWith(arg, "--replicas=")) {
      flags->replicas = std::atoi(arg.c_str() + 11);
    } else if (StartsWith(arg, "--batch-max=")) {
      flags->batch_max = std::atoi(arg.c_str() + 12);
    } else if (StartsWith(arg, "--batch=")) {
      // Legacy alias from the caller-batched serve loop.
      flags->batch_max = std::atoi(arg.c_str() + 8);
    } else if (StartsWith(arg, "--batch-timeout-us=")) {
      flags->batch_timeout_us = std::atoll(arg.c_str() + 19);
    } else if (StartsWith(arg, "--route=")) {
      flags->route = arg.substr(8);
    } else if (StartsWith(arg, "--backend=")) {
      flags->backend = arg.substr(10);
    } else if (StartsWith(arg, "--append=")) {
      flags->append_file = arg.substr(9);
    } else if (StartsWith(arg, "--delete-ids=")) {
      flags->delete_ids = arg.substr(13);
    } else if (StartsWith(arg, "--save-snapshot=")) {
      flags->save_snapshot = arg.substr(16);
    } else if (StartsWith(arg, "--compact-threshold=")) {
      // A dead *fraction* in [0, 1] — "30" meaning 30% would silently
      // never fire, so anything malformed or out of range is an error,
      // not a disabled feature.
      char* end = nullptr;
      flags->compact_threshold = std::strtod(arg.c_str() + 20, &end);
      if (end == arg.c_str() + 20 || *end != '\0' ||
          !std::isfinite(flags->compact_threshold) ||
          flags->compact_threshold < 0.0 || flags->compact_threshold > 1.0) {
        std::fprintf(stderr,
                     "--compact-threshold must be a dead fraction in "
                     "[0, 1], got %s\n",
                     arg.c_str() + 20);
        return false;
      }
    } else if (arg == "--compact") {
      flags->compact = true;
    } else if (StartsWith(arg, "--metrics-json=")) {
      flags->metrics_json = arg.substr(15);
    } else if (StartsWith(arg, "--trace-out=")) {
      flags->trace_out = arg.substr(12);
    } else if (StartsWith(arg, "--trace-sample=")) {
      // Accepts "1/N" (the documented form) or bare "N".
      const char* value = arg.c_str() + 15;
      if (value[0] == '1' && value[1] == '/') value += 2;
      flags->trace_sample = std::atoi(value);
      if (flags->trace_sample < 0) {
        std::fprintf(stderr, "--trace-sample must be 1/N with N >= 1\n");
        return false;
      }
    } else if (StartsWith(arg, "--report-interval-ms=")) {
      flags->report_interval_ms = std::atoll(arg.c_str() + 21);
    } else if (StartsWith(arg, "--slow-query-ms=")) {
      flags->slow_query_ms = std::atof(arg.c_str() + 16);
    } else if (StartsWith(arg, "--deadline-ms=")) {
      char* end = nullptr;
      flags->deadline_ms = std::strtod(arg.c_str() + 14, &end);
      if (end == arg.c_str() + 14 || *end != '\0' ||
          !std::isfinite(flags->deadline_ms) || flags->deadline_ms < 0.0) {
        std::fprintf(stderr,
                     "--deadline-ms must be a non-negative number of "
                     "milliseconds, got %s\n",
                     arg.c_str() + 14);
        return false;
      }
    } else if (StartsWith(arg, "--retries=")) {
      flags->retries = std::atoi(arg.c_str() + 10);
      if (flags->retries < 1) {
        std::fprintf(stderr,
                     "--retries must be >= 1 (total dispatch attempts per "
                     "batch; 1 disables retries), got %s\n",
                     arg.c_str() + 10);
        return false;
      }
    } else if (StartsWith(arg, "--hedge-budget=")) {
      char* end = nullptr;
      flags->hedge_budget = std::strtod(arg.c_str() + 15, &end);
      // A *fraction* of batches allowed a duplicate dispatch — "30"
      // meaning 30% would silently clamp to hedging everything, so
      // anything malformed or out of range is an error.
      if (end == arg.c_str() + 15 || *end != '\0' ||
          !std::isfinite(flags->hedge_budget) || flags->hedge_budget < 0.0 ||
          flags->hedge_budget > 1.0) {
        std::fprintf(stderr,
                     "--hedge-budget must be a fraction in [0, 1], got %s\n",
                     arg.c_str() + 15);
        return false;
      }
    } else if (StartsWith(arg, "--hedge-delay-us=")) {
      flags->hedge_delay_us = std::atoll(arg.c_str() + 17);
      if (flags->hedge_delay_us < 0) {
        std::fprintf(stderr,
                     "--hedge-delay-us must be >= 0 (0 = auto, the live "
                     "search p99), got %s\n",
                     arg.c_str() + 17);
        return false;
      }
    } else if (arg == "--supervise") {
      flags->supervise = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// The synthetic environment a (dataset, seed, scale) triple determines.
struct Env {
  std::unique_ptr<data::SemanticWorld> world;
  data::Dataset dataset;
  data::ConceptVocab vocab;
  std::unique_ptr<vlp::SimulatedVlpModel> vlp;
};

Env MakeEnv(const Flags& flags) {
  Env env;
  env.world = std::make_unique<data::SemanticWorld>(flags.seed);
  data::SyntheticOptions options = data::DefaultOptionsFor(flags.dataset);
  options.sizes.database =
      static_cast<int>(options.sizes.database * 0.25 * flags.scale);
  options.sizes.train =
      static_cast<int>(options.sizes.train * 0.4 * flags.scale);
  options.sizes.query =
      static_cast<int>(options.sizes.query * 0.3 * flags.scale);
  Rng rng(flags.seed + 17);
  env.dataset = data::MakeDatasetByName(flags.dataset, env.world.get(),
                                        options, &rng);
  env.vocab = data::MakeNusVocab(env.world.get());
  env.vlp = std::make_unique<vlp::SimulatedVlpModel>(env.world.get());
  return env;
}

int CmdTrain(const Flags& flags) {
  if (flags.model.empty()) {
    std::fprintf(stderr, "train: --model=PATH is required\n");
    return 2;
  }
  Env env = MakeEnv(flags);
  std::printf("corpus: %s database=%zu train=%zu query=%zu\n",
              env.dataset.name.c_str(), env.dataset.split.database.size(),
              env.dataset.split.train.size(), env.dataset.split.query.size());

  core::UhscmConfig config = core::DefaultConfigFor(flags.dataset, flags.bits);
  config.seed = flags.seed;
  core::UhscmTrainer trainer(env.vlp.get(), config);
  Result<core::UhscmModel> model = trainer.Train(
      env.dataset.pixels.SelectRows(env.dataset.split.train), env.vocab);
  if (!model.ok()) {
    std::fprintf(stderr, "train failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("trained: %zu retained concepts, final loss %.4f\n",
              model->retained_concepts.size(), model->epoch_losses.back());

  Status st = io::SaveHashingNetwork(*model->network, flags.model);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote model -> %s\n", flags.model.c_str());

  if (!flags.codes.empty()) {
    const linalg::Matrix db_codes = model->Encode(
        env.dataset.pixels.SelectRows(env.dataset.split.database));
    st = io::SavePackedCodes(index::PackedCodes::FromSignMatrix(db_codes),
                             flags.codes);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %d database codes -> %s\n", db_codes.rows(),
                flags.codes.c_str());
  }
  return 0;
}

int CmdInfo(const Flags& flags) {
  if (flags.file.empty()) {
    std::fprintf(stderr, "info: --file=PATH is required\n");
    return 2;
  }
  if (Result<std::unique_ptr<core::HashingNetwork>> net =
          io::LoadHashingNetwork(flags.file);
      net.ok()) {
    std::printf("%s: hashing network, input_dim=%d hidden=%d/%d bits=%d\n",
                flags.file.c_str(), (*net)->input_dim(),
                (*net)->options().hidden1, (*net)->options().hidden2,
                (*net)->bits());
    return 0;
  }
  if (Result<io::CodesSnapshot> snap = io::LoadCodesSnapshot(flags.file);
      snap.ok()) {
    if (snap->version >= 2) {
      std::printf(
          "%s: serving snapshot v2, n=%d (%d live), bits=%d, epoch=%llu\n",
          flags.file.c_str(), snap->codes.size(), snap->LiveCount(),
          snap->codes.bits(),
          static_cast<unsigned long long>(snap->epoch));
    } else {
      std::printf("%s: packed codes, n=%d bits=%d (%d words/code)\n",
                  flags.file.c_str(), snap->codes.size(), snap->codes.bits(),
                  snap->codes.words_per_code());
    }
    return 0;
  }
  if (Result<linalg::Matrix> m = io::LoadMatrix(flags.file); m.ok()) {
    std::printf("%s: matrix, %dx%d\n", flags.file.c_str(), m->rows(),
                m->cols());
    return 0;
  }
  std::fprintf(stderr, "%s: not a recognized uhscm artifact\n",
               flags.file.c_str());
  return 1;
}

int CmdEval(const Flags& flags) {
  if (flags.model.empty()) {
    std::fprintf(stderr, "eval: --model=PATH is required\n");
    return 2;
  }
  Result<std::unique_ptr<core::HashingNetwork>> net =
      io::LoadHashingNetwork(flags.model);
  if (!net.ok()) {
    std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
    return 1;
  }
  Env env = MakeEnv(flags);
  const linalg::Matrix db_codes = (*net)->EncodeBinary(
      env.dataset.pixels.SelectRows(env.dataset.split.database));
  const linalg::Matrix query_codes = (*net)->EncodeBinary(
      env.dataset.pixels.SelectRows(env.dataset.split.query));
  eval::RetrievalEvalOptions options;
  options.map_at = 5000;
  options.topn_points = {10};
  const eval::RetrievalEvalResult result =
      eval::EvaluateRetrieval(env.dataset, db_codes, query_codes, options);
  std::printf("%s @ %d bits: MAP=%.4f P@10=%.4f (%zu queries)\n",
              flags.dataset.c_str(), (*net)->bits(), result.map,
              result.precision_at_n[0], env.dataset.split.query.size());
  return 0;
}

int CmdQuery(const Flags& flags) {
  if (flags.model.empty() || flags.codes.empty()) {
    std::fprintf(stderr, "query: --model= and --codes= are required\n");
    return 2;
  }
  Result<std::unique_ptr<core::HashingNetwork>> net =
      io::LoadHashingNetwork(flags.model);
  Result<index::PackedCodes> codes = io::LoadPackedCodes(flags.codes);
  if (!net.ok() || !codes.ok()) {
    std::fprintf(stderr, "failed to reload artifacts\n");
    return 1;
  }
  Env env = MakeEnv(flags);
  if (codes->size() != static_cast<int>(env.dataset.split.database.size())) {
    std::fprintf(stderr,
                 "code count (%d) does not match the corpus database (%zu) "
                 "— wrong --seed/--scale/--dataset?\n",
                 codes->size(), env.dataset.split.database.size());
    return 1;
  }
  index::LinearScanIndex scan(std::move(codes.ValueOrDie()));
  const linalg::Matrix query_codes = (*net)->EncodeBinary(
      env.dataset.pixels.SelectRows(env.dataset.split.query));
  const index::PackedCodes packed =
      index::PackedCodes::FromSignMatrix(query_codes);

  const int shown = std::min(flags.queries, packed.size());
  for (int q = 0; q < shown; ++q) {
    const int query_image = env.dataset.split.query[static_cast<size_t>(q)];
    std::printf("query %d:", q);
    for (const index::Neighbor& nb : scan.TopK(packed.code(q), flags.topk)) {
      const int db_image =
          env.dataset.split.database[static_cast<size_t>(nb.id)];
      std::printf(" %c%d(d=%d)",
                  env.dataset.Relevant(query_image, db_image) ? '+' : '-',
                  nb.id, nb.distance);
    }
    std::printf("\n");
  }
  return 0;
}

/// dedup: offline all-pairs analytics over a packed-codes artifact via
/// the tiled self-join engine — k nearest neighbors for every row
/// (--k), duplicate clusters within a Hamming radius (--radius), or
/// both. Tombstones in a v2 snapshot are honored: dead rows never join.
int CmdDedup(const Flags& flags) {
  if (flags.codes.empty()) {
    std::fprintf(stderr, "dedup: --codes=PATH is required\n");
    return 2;
  }
  if (flags.join_k <= 0 && flags.radius < 0) {
    std::fprintf(stderr,
                 "dedup: at least one of --k=K (top-k join) or --radius=R "
                 "(duplicate grouping) is required\n");
    return 2;
  }
  Result<io::CodesSnapshot> snap = io::LoadCodesSnapshot(flags.codes);
  if (!snap.ok()) {
    std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
    return 1;
  }
  const index::PackedCodes& codes = snap->codes;
  index::TombstoneSet dead;
  if (snap->HasTombstones()) {
    dead = index::TombstoneSet::FromWords(codes.size(),
                                          snap->tombstone_words);
  }
  index::SelfJoinOptions options;
  options.threads = flags.threads;
  options.tile = flags.tile;
  options.tombstones = dead.any() ? &dead : nullptr;
  const int live = codes.size() - dead.dead_count();
  std::printf("%s: n=%d (%d live), bits=%d | kernel tier %s\n",
              flags.codes.c_str(), codes.size(), live, codes.bits(),
              index::KernelTierName(index::ActiveKernelTier()));

  index::SelfJoinStats topk_stats;
  std::vector<std::vector<index::Neighbor>> neighbors;
  double mean_nn = 0.0;
  if (flags.join_k > 0) {
    neighbors = index::TopKJoin(codes, flags.join_k, options, &topk_stats);
    int64_t nn_sum = 0, nn_rows = 0;
    for (const auto& row : neighbors) {
      if (!row.empty()) {
        nn_sum += row.front().distance;
        ++nn_rows;
      }
    }
    mean_nn = nn_rows > 0 ? static_cast<double>(nn_sum) / nn_rows : 0.0;
    std::printf(
        "top-%d join: %.2fs, %.1f Mpairs/s (%.1f%% pruned), mean nearest "
        "distance %.2f\n",
        flags.join_k, topk_stats.seconds,
        topk_stats.pairs_total / topk_stats.seconds / 1e6,
        topk_stats.pairs_total > 0
            ? 100.0 * topk_stats.pairs_pruned / topk_stats.pairs_total
            : 0.0,
        mean_nn);
  }

  index::DedupGroupsResult groups;
  if (flags.radius >= 0) {
    index::DedupOptions dedup;
    dedup.radius = flags.radius;
    dedup.link = flags.link == "best" ? index::DedupLink::kReciprocalBest
                                      : index::DedupLink::kRadius;
    groups = index::DedupGroups(codes, dedup, options);
    std::printf(
        "dedup radius=%d link=%s: %.2fs, %zu groups, %lld rows clustered "
        "(%zu reciprocal best pairs)\n",
        flags.radius, flags.link.c_str(), groups.join.seconds,
        groups.groups.size(),
        static_cast<long long>(groups.rows_clustered),
        groups.reciprocal_pairs.size());
    const size_t show = std::min<size_t>(groups.groups.size(), 10);
    for (size_t g = 0; g < show; ++g) {
      std::printf("  group %zu (%zu rows):", g, groups.groups[g].size());
      const size_t members = std::min<size_t>(groups.groups[g].size(), 8);
      for (size_t m = 0; m < members; ++m) {
        std::printf(" %d", groups.groups[g][m]);
      }
      if (members < groups.groups[g].size()) std::printf(" ...");
      std::printf("\n");
    }
    if (show < groups.groups.size()) {
      std::printf("  ... %zu more groups\n", groups.groups.size() - show);
    }
  }

  if (!flags.json_out.empty()) {
    std::FILE* f = std::fopen(flags.json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "dedup: cannot write %s\n",
                   flags.json_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"command\": \"dedup\",\n");
    std::fprintf(f,
                 "  \"codes\": \"%s\", \"n\": %d, \"live\": %d, "
                 "\"bits\": %d,\n",
                 flags.codes.c_str(), codes.size(), live, codes.bits());
    std::fprintf(f, "  \"kernel_tier\": \"%s\",\n",
                 index::KernelTierName(index::ActiveKernelTier()));
    if (flags.join_k > 0) {
      std::fprintf(f,
                   "  \"topk\": {\"k\": %d, \"seconds\": %.6f, "
                   "\"pairs_total\": %lld, \"pairs_pruned\": %lld, "
                   "\"pairs_scored\": %lld, \"mean_nn_distance\": %.3f},\n",
                   flags.join_k, topk_stats.seconds,
                   static_cast<long long>(topk_stats.pairs_total),
                   static_cast<long long>(topk_stats.pairs_pruned),
                   static_cast<long long>(topk_stats.pairs_scored), mean_nn);
    }
    if (flags.radius >= 0) {
      std::fprintf(f,
                   "  \"dedup\": {\"radius\": %d, \"link\": \"%s\", "
                   "\"seconds\": %.6f, \"groups\": %zu, "
                   "\"rows_clustered\": %lld, \"reciprocal_pairs\": %zu},\n",
                   flags.radius, flags.link.c_str(), groups.join.seconds,
                   groups.groups.size(),
                   static_cast<long long>(groups.rows_clustered),
                   groups.reciprocal_pairs.size());
      // Group lists capped so a pathological radius cannot produce a
      // multi-GB report; the counts above are always complete.
      constexpr size_t kMaxJsonGroups = 1000;
      const size_t emit = std::min(groups.groups.size(), kMaxJsonGroups);
      std::fprintf(f, "  \"groups_truncated\": %s,\n  \"groups\": [",
                   emit < groups.groups.size() ? "true" : "false");
      for (size_t g = 0; g < emit; ++g) {
        std::fprintf(f, "%s[", g == 0 ? "" : ", ");
        for (size_t m = 0; m < groups.groups[g].size(); ++m) {
          std::fprintf(f, "%s%d", m == 0 ? "" : ", ", groups.groups[g][m]);
        }
        std::fprintf(f, "]");
      }
      std::fprintf(f, "],\n");
    }
    std::fprintf(f, "  \"ok\": true\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", flags.json_out.c_str());
  }
  return 0;
}

int CmdServe(const Flags& flags) {
  if (flags.codes.empty()) {
    std::fprintf(stderr, "serve: --codes=PATH is required\n");
    return 2;
  }
  if (flags.backend != "scan" && flags.backend != "mih") {
    std::fprintf(stderr, "serve: --backend must be scan or mih\n");
    return 2;
  }
  serve::RoutePolicy route_policy;
  if (!serve::ParseRoutePolicy(flags.route, &route_policy)) {
    std::fprintf(stderr, "serve: --route must be rr or least\n");
    return 2;
  }
  // A hedge duplicates a batch onto a *different* replica — with one
  // replica there is nowhere to hedge to, so the combination is a
  // misconfiguration, not a silent no-op.
  if (flags.hedge_budget > 0.0 && flags.replicas <= 1) {
    std::fprintf(stderr,
                 "serve: --hedge-budget=%g needs --replicas > 1 (a hedge "
                 "re-submits to a second replica)\n",
                 flags.hedge_budget);
    return 2;
  }
  if (flags.hedge_delay_us > 0 && flags.hedge_budget <= 0.0) {
    std::fprintf(stderr,
                 "serve: --hedge-delay-us has no effect without "
                 "--hedge-budget > 0\n");
    return 2;
  }

  serve::ReplicaSetOptions options;
  options.replicas = std::max(1, flags.replicas);
  options.supervise = flags.supervise;
  options.serving.index.num_shards = flags.shards;
  options.serving.index.backend =
      flags.backend == "mih" ? serve::ShardBackend::kMultiIndexHash
                             : serve::ShardBackend::kLinearScan;
  options.serving.engine.num_threads = flags.threads;
  options.serving.engine.compact_dead_fraction = flags.compact_threshold;
  // One disk read handles both the legacy v1 codes artifact and the v2
  // serving snapshot; the loaded snapshot doubles as the query-sampling
  // source before the engine takes ownership of it.
  Result<io::CodesSnapshot> loaded = io::LoadCodesSnapshot(flags.codes);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  io::CodesSnapshot snapshot = std::move(loaded).ValueOrDie();

  // Build the query stream *once*: real encoded queries when a model is
  // given, otherwise surviving database codes replayed against
  // themselves. Every replay pass below submits straight out of this one
  // packed buffer — the stream is never re-read or re-encoded per pass.
  // Either way `--queries` caps the stream.
  const int max_queries = std::max(1, flags.queries);
  index::PackedCodes queries;
  if (!flags.model.empty()) {
    Result<std::unique_ptr<core::HashingNetwork>> net =
        io::LoadHashingNetwork(flags.model);
    if (!net.ok()) {
      std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
      return 1;
    }
    if ((*net)->bits() != snapshot.codes.bits()) {
      std::fprintf(stderr,
                   "serve: model emits %d-bit codes but %s holds %d-bit "
                   "codes — wrong --model/--codes pairing?\n",
                   (*net)->bits(), flags.codes.c_str(),
                   snapshot.codes.bits());
      return 1;
    }
    Env env = MakeEnv(flags);
    std::vector<int> query_rows = env.dataset.split.query;
    if (static_cast<int>(query_rows.size()) > max_queries) {
      query_rows.resize(static_cast<size_t>(max_queries));
    }
    queries = index::PackedCodes::FromSignMatrix(
        (*net)->EncodeBinary(env.dataset.pixels.SelectRows(query_rows)));
  } else {
    // First live rows of the snapshot (a v1 artifact has no tombstone
    // bitmap — every row is live).
    const int words_per_code = snapshot.codes.words_per_code();
    const int count = std::min(max_queries, snapshot.LiveCount());
    std::vector<uint64_t> words;
    words.reserve(static_cast<size_t>(count) * words_per_code);
    int taken = 0;
    for (int gid = 0; gid < snapshot.codes.size() && taken < count; ++gid) {
      if (snapshot.IsDead(gid)) continue;
      const uint64_t* src = snapshot.codes.code(gid);
      words.insert(words.end(), src, src + words_per_code);
      ++taken;
    }
    queries = index::PackedCodes::FromRawWords(
        taken, snapshot.codes.bits(), std::move(words));
  }

  // The async pipeline: N identically-hydrated replicas behind a
  // load-aware router, fed by the adaptive batcher. All query traffic
  // goes through Batcher::Submit — nothing calls Search directly.
  serve::ReplicaSet replicas(snapshot, options);
  // Each replica holds its own corpus copy now (plus the set's retained
  // respawn base); drop the loaded snapshot's buffers so peak memory
  // stays at N+1 copies, not N+2.
  snapshot = io::CodesSnapshot();
  serve::Router router(&replicas, route_policy);
  serve::BatcherOptions batcher_options;
  batcher_options.max_batch = flags.batch_max;
  batcher_options.timeout_us = flags.batch_timeout_us;
  batcher_options.max_attempts = flags.retries;
  batcher_options.hedge_budget = flags.hedge_budget;
  batcher_options.hedge_delay_us = flags.hedge_delay_us;
  serve::Batcher batcher(&router, batcher_options);

  // Tracing: arm the sampler before any request is admitted. Asking for
  // a trace file without a rate means "trace everything".
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (flags.trace_sample > 0 || !flags.trace_out.empty()) {
    recorder.SetSampleEvery(
        flags.trace_sample > 0 ? static_cast<uint32_t>(flags.trace_sample)
                               : 1);
  }

  // Publishes a snapshot's counters into the registry and, when
  // --metrics-json is set, writes the registry there — the same payload
  // the unified dump prints at exit.
  auto export_metrics = [&](const serve::ServeStatsSnapshot& snap) {
    serve::FillRegistry(snap, &registry);
    if (flags.metrics_json.empty()) return;
    if (std::FILE* f = std::fopen(flags.metrics_json.c_str(), "w")) {
      const std::string json = registry.DumpJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "serve: cannot write --metrics-json=%s\n",
                   flags.metrics_json.c_str());
    }
  };

  // Periodic one-line stats report (plus a metrics-json refresh) on a
  // timer thread; stopped before drain.
  std::mutex report_mu;
  std::condition_variable report_cv;
  bool report_stop = false;
  std::thread reporter;
  if (flags.report_interval_ms > 0) {
    reporter = std::thread([&] {
      std::unique_lock<std::mutex> lock(report_mu);
      while (!report_cv.wait_for(
          lock, std::chrono::milliseconds(flags.report_interval_ms),
          [&] { return report_stop; })) {
        const serve::ServeStatsSnapshot s = batcher.stats();
        std::printf(
            "[serve] qps=%.1f p50=%.3fms p99=%.3fms hit=%.2f depth=%lld "
            "epoch=%llu\n",
            s.qps(), s.latency_p50_ms, s.latency_p99_ms, s.hit_rate(),
            static_cast<long long>(s.queue_depth),
            static_cast<unsigned long long>(s.epoch));
        export_metrics(s);
      }
    });
  }

  const serve::QueryEngine& engine0 = *replicas.replica(0);
  // Record the dispatch decision in the registry so every --metrics-json
  // dump says which kernel tier served the run (0=scalar 1=avx2 2=avx512,
  // matching KernelTier's enumerators).
  const index::KernelTier active_tier = index::ActiveKernelTier();
  obs::MetricsRegistry::Global().GetGauge("kernel.tier")->Set(
      static_cast<int64_t>(active_tier));
  const char* tier_detail =
      active_tier == index::KernelTier::kAvx512
          ? (index::Avx512VpopcntAvailable() ? "+vpopcntdq" : "+harley-seal")
          : "";
  std::printf(
      "serving %d live / %d total codes @ %d bits: %d replicas x %d shards "
      "(%s), %d threads each, %s routing, batch B=%d T=%lldus, %s%s kernel, "
      "epoch %llu\n",
      engine0.index().size(), engine0.index().total_size(),
      engine0.index().bits(), replicas.num_replicas(),
      engine0.index().num_shards(), flags.backend.c_str(),
      engine0.num_threads(), serve::RoutePolicyName(route_policy),
      batcher.options().max_batch,
      static_cast<long long>(batcher.options().timeout_us),
      index::KernelTierName(active_tier), tier_detail,
      static_cast<unsigned long long>(replicas.epoch()));

  TableWriter table({"pass", "queries", "batches", "by_size", "by_timeout",
                     "hit_rate", "tiq_p50_ms", "tiq_p99_ms", "qps", "p50_ms",
                     "p99_ms"});
  // Per-pass stats are reset between passes; the batch-size histogram is
  // accumulated across all of them for the run-wide summary line.
  std::array<int64_t, serve::kBatchSizeBuckets> hist_total{};
  auto replay_pass = [&](const char* pass) -> bool {
    // Reset at the start (not the end) so the final pass's engine and
    // pipeline counters survive for the per-replica table below.
    batcher.ResetStats();
    std::vector<std::future<serve::SearchResponse>> futures;
    futures.reserve(static_cast<size_t>(queries.size()));
    for (int q = 0; q < queries.size(); ++q) {
      // Each request's deadline starts at its own submission — what a
      // per-request client SLA would look like.
      auto deadline = std::chrono::steady_clock::time_point::max();
      if (flags.deadline_ms > 0.0) {
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::nanoseconds(
                       static_cast<int64_t>(flags.deadline_ms * 1e6));
      }
      futures.push_back(batcher.Submit(queries, q, flags.topk, deadline));
    }
    for (std::future<serve::SearchResponse>& future : futures) {
      const serve::SearchResponse response = future.get();
      if (!response.status.ok()) {
        // Deadline misses are an expected outcome of running with an
        // SLA, reported in the counters; anything else fails the pass.
        if (response.status.code() == StatusCode::kDeadlineExceeded) {
          continue;
        }
        std::fprintf(stderr, "serve: pipeline request failed: %s\n",
                     response.status.ToString().c_str());
        return false;
      }
    }
    const serve::ServeStatsSnapshot stats = batcher.stats();
    char hit_rate[32], tiq50[32], tiq99[32], qps[32], p50[32], p99[32];
    std::snprintf(hit_rate, sizeof(hit_rate), "%.2f", stats.hit_rate());
    std::snprintf(tiq50, sizeof(tiq50), "%.3f", stats.time_in_queue_p50_ms);
    std::snprintf(tiq99, sizeof(tiq99), "%.3f", stats.time_in_queue_p99_ms);
    std::snprintf(qps, sizeof(qps), "%.1f", stats.qps());
    std::snprintf(p50, sizeof(p50), "%.3f", stats.latency_p50_ms);
    std::snprintf(p99, sizeof(p99), "%.3f", stats.latency_p99_ms);
    table.AddRow({pass, std::to_string(stats.queries),
                  std::to_string(stats.batches),
                  std::to_string(stats.batches_flushed_by_size),
                  std::to_string(stats.batches_flushed_by_timeout), hit_rate,
                  tiq50, tiq99, qps, p50, p99});
    for (int b = 0; b < serve::kBatchSizeBuckets; ++b) {
      hist_total[static_cast<size_t>(b)] +=
          stats.batch_size_hist[static_cast<size_t>(b)];
    }
    return true;
  };
  if (!replay_pass("cold") || !replay_pass("cache-hot")) return 1;

  // Admin ops: mutate the live corpus (fanned to every replica so
  // epochs stay coherent), then replay once more so the post-update pass
  // shows the epoch-keyed caches re-filling (the cache-hot entries above
  // are unreachable under the new epoch).
  bool updated = false;
  if (!flags.append_file.empty()) {
    Result<index::PackedCodes> extra = io::LoadPackedCodes(flags.append_file);
    if (!extra.ok()) {
      std::fprintf(stderr, "%s\n", extra.status().ToString().c_str());
      return 1;
    }
    if (extra->bits() != engine0.index().bits()) {
      std::fprintf(stderr,
                   "serve: --append file holds %d-bit codes, corpus is "
                   "%d-bit\n",
                   extra->bits(), engine0.index().bits());
      return 1;
    }
    const std::vector<int> ids = replicas.Append(*extra);
    std::printf("appended %zu codes (global ids %d..%d) to %d replicas, "
                "epoch -> %llu\n",
                ids.size(), ids.empty() ? 0 : ids.front(),
                ids.empty() ? 0 : ids.back(), replicas.num_replicas(),
                static_cast<unsigned long long>(replicas.epoch()));
    updated = true;
  }
  if (!flags.delete_ids.empty()) {
    std::vector<int> ids;
    if (!ParseIdList(flags.delete_ids, &ids)) {
      std::fprintf(stderr, "serve: malformed --delete-ids list\n");
      return 2;
    }
    const int removed = replicas.RemoveIds(ids);
    std::printf("removed %d/%zu ids, epoch -> %llu (%d live / %d total)\n",
                removed, ids.size(),
                static_cast<unsigned long long>(replicas.epoch()),
                engine0.index().size(), engine0.index().total_size());
    updated = true;
  }
  if (flags.compact) {
    // Manual admin compaction, fanned to every replica with coherence
    // checks. Runs after the deletes above so the reclaim covers them.
    const serve::CompactionStats stats = replicas.Compact();
    std::printf(
        "compacted %d shard(s), reclaimed %d dead row(s) per replica, "
        "epoch -> %llu (%d live / %d total ids)\n",
        stats.shards_compacted, stats.rows_reclaimed,
        static_cast<unsigned long long>(replicas.epoch()),
        engine0.index().size(), engine0.index().total_size());
    updated = updated || stats.rows_reclaimed > 0;
  }
  // Capture the admin ops' mutation/compaction counters before the
  // post-update pass resets them; the unified dump below folds them back
  // in so the run's compaction work is reported exactly once.
  const serve::ServeStatsSnapshot admin_snap = batcher.stats();
  if (updated && !replay_pass("post-update")) return 1;
  table.Print(std::cout);

  // One unified registry dump replaces the old hand-formatted
  // compaction / cache / pipeline blocks: the printed counters and the
  // --metrics-json export now come from the same registry, so they
  // cannot drift apart. (The admin-op counters were reset by the
  // post-update pass; take the max so they survive into the dump.)
  serve::ServeStatsSnapshot final_snap = batcher.stats();
  final_snap.appends = std::max(final_snap.appends, admin_snap.appends);
  final_snap.removes = std::max(final_snap.removes, admin_snap.removes);
  final_snap.compactions =
      std::max(final_snap.compactions, admin_snap.compactions);
  final_snap.compact_rows_reclaimed = std::max(
      final_snap.compact_rows_reclaimed, admin_snap.compact_rows_reclaimed);
  final_snap.compaction_ms =
      std::max(final_snap.compaction_ms, admin_snap.compaction_ms);
  for (int b = 0; b < serve::kBatchSizeBuckets; ++b) {
    registry
        .GetGauge("pipeline.batch_size_" +
                  serve::BatchSizeBucketLabel(b))
        ->Set(hist_total[static_cast<size_t>(b)]);
  }
  export_metrics(final_snap);
  std::printf("--- metrics ---\n%s", registry.DumpText().c_str());
  if (replicas.num_replicas() > 1) {
    // routed_batches counts the whole run; the engine columns cover the
    // final pass (per-pass resets scope the main table above).
    TableWriter replica_table(
        {"replica", "routed_batches", "queries", "hit_rate", "p99_ms"});
    const std::vector<serve::ServeStatsSnapshot> per_replica =
        replicas.PerReplicaStats();
    for (int r = 0; r < replicas.num_replicas(); ++r) {
      char hit_rate[32], p99[32];
      std::snprintf(hit_rate, sizeof(hit_rate), "%.2f",
                    per_replica[static_cast<size_t>(r)].hit_rate());
      std::snprintf(p99, sizeof(p99), "%.3f",
                    per_replica[static_cast<size_t>(r)].latency_p99_ms);
      replica_table.AddRow(
          {std::to_string(r), std::to_string(router.routed(r)),
           std::to_string(per_replica[static_cast<size_t>(r)].queries),
           hit_rate, p99});
    }
    replica_table.Print(std::cout);
  }

  if (!flags.save_snapshot.empty()) {
    // Replicas are update-coherent, so replica 0's corpus is the corpus.
    Status st = serve::SaveServingSnapshot(engine0, flags.save_snapshot);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote serving snapshot (v2, epoch %llu, %d live / %d "
                "total) -> %s\n",
                static_cast<unsigned long long>(replicas.epoch()),
                engine0.index().size(), engine0.index().total_size(),
                flags.save_snapshot.c_str());
  }
  // Orderly exit: stop the reporter, reject new work, resolve anything
  // still queued, wait for in-flight batches — then the replicas (and
  // their pools) tear down with nothing in flight.
  if (reporter.joinable()) {
    {
      std::lock_guard<std::mutex> lock(report_mu);
      report_stop = true;
    }
    report_cv.notify_all();
    reporter.join();
  }
  batcher.Drain();

  // Trace export + slow-query log after the drain so every span of the
  // run (including in-flight batches at shutdown) is in the ring.
  if (!flags.trace_out.empty()) {
    if (Status st = recorder.WriteChromeTrace(flags.trace_out); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu trace span(s) -> %s\n", recorder.size(),
                flags.trace_out.c_str());
  }
  if (flags.slow_query_ms > 0.0) {
    const std::string log = recorder.SlowQueryLog(flags.slow_query_ms, 10);
    std::printf("--- slow queries (>= %.3f ms) ---\n%s",
                flags.slow_query_ms, log.empty() ? "(none)\n" : log.c_str());
  }
  // Final metrics refresh so the on-exit JSON includes shutdown counts.
  export_metrics(final_snap);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();
  if (command == "train") return CmdTrain(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "eval") return CmdEval(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "dedup") return CmdDedup(flags);
  if (command == "serve") return CmdServe(flags);
  return Usage();
}

}  // namespace
}  // namespace uhscm::cli

int main(int argc, char** argv) { return uhscm::cli::Main(argc, argv); }
