// uhscm_cli — command-line front end over the library: train a model on
// a synthetic corpus, persist the artifacts, inspect them, and serve
// retrieval queries — the minimal ops loop of a deployment.
//
// Subcommands:
//   train  --dataset=cifar|nuswide|flickr --bits=K --seed=N --scale=F
//          --model=PATH --codes=PATH
//       Builds the synthetic corpus, trains UHSCM, writes the hashing
//       network and the packed database codes.
//   info   --file=PATH
//       Prints what an artifact file contains.
//   eval   --dataset=... --bits=K --seed=N --scale=F --model=PATH
//       Regenerates the same corpus (same seed), reloads the model, and
//       reports MAP / P@10 under the paper's protocol.
//   query  --dataset=... --seed=N --scale=F --model=PATH --codes=PATH
//          [--topk=10] [--queries=5]
//       Reloads model + codes and prints top-k results for sample
//       queries with relevance flags.
//   serve  --codes=PATH [--model=PATH --dataset=... --seed=N --scale=F]
//          [--shards=N] [--threads=N] [--batch=B] [--backend=scan|mih]
//          [--topk=K] [--queries=N]
//       Hydrates a sharded QueryEngine from the packed codes and replays
//       a query stream through it twice (cold, then cache-hot), printing
//       QPS, latency percentiles and cache hit rate. Queries are encoded
//       from the synthetic query split when --model is given, otherwise
//       sampled from the database codes themselves.
//
// The corpus is synthetic and seed-determined, so "the same dataset" is
// reproducible from (dataset, seed, scale) alone — no data files needed.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "core/trainer.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "eval/retrieval_eval.h"
#include "index/hamming_kernels.h"
#include "index/linear_scan.h"
#include "io/serialize.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "vlp/simulated_vlp.h"

namespace uhscm::cli {
namespace {

struct Flags {
  std::string dataset = "cifar";
  int bits = 64;
  uint64_t seed = 2023;
  double scale = 1.0;
  std::string model;
  std::string codes;
  std::string file;
  int topk = 10;
  int queries = 5;
  int shards = 4;
  int threads = 0;  // 0 = hardware concurrency
  int batch = 32;
  std::string backend = "scan";
};

int Usage() {
  std::fprintf(stderr,
               "usage: uhscm_cli <train|info|eval|query|serve> "
               "[--dataset=...] [--bits=K] [--seed=N] [--scale=F] "
               "[--model=PATH] [--codes=PATH] [--file=PATH] [--topk=K] "
               "[--queries=N] [--shards=N] [--threads=N] [--batch=B] "
               "[--backend=scan|mih]\n");
  return 2;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--dataset=")) {
      flags->dataset = arg.substr(10);
    } else if (StartsWith(arg, "--bits=")) {
      flags->bits = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--seed=")) {
      flags->seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (StartsWith(arg, "--scale=")) {
      flags->scale = std::atof(arg.c_str() + 8);
    } else if (StartsWith(arg, "--model=")) {
      flags->model = arg.substr(8);
    } else if (StartsWith(arg, "--codes=")) {
      flags->codes = arg.substr(8);
    } else if (StartsWith(arg, "--file=")) {
      flags->file = arg.substr(7);
    } else if (StartsWith(arg, "--topk=")) {
      flags->topk = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--queries=")) {
      flags->queries = std::atoi(arg.c_str() + 10);
    } else if (StartsWith(arg, "--shards=")) {
      flags->shards = std::atoi(arg.c_str() + 9);
    } else if (StartsWith(arg, "--threads=")) {
      flags->threads = std::atoi(arg.c_str() + 10);
    } else if (StartsWith(arg, "--batch=")) {
      flags->batch = std::atoi(arg.c_str() + 8);
    } else if (StartsWith(arg, "--backend=")) {
      flags->backend = arg.substr(10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// The synthetic environment a (dataset, seed, scale) triple determines.
struct Env {
  std::unique_ptr<data::SemanticWorld> world;
  data::Dataset dataset;
  data::ConceptVocab vocab;
  std::unique_ptr<vlp::SimulatedVlpModel> vlp;
};

Env MakeEnv(const Flags& flags) {
  Env env;
  env.world = std::make_unique<data::SemanticWorld>(flags.seed);
  data::SyntheticOptions options = data::DefaultOptionsFor(flags.dataset);
  options.sizes.database =
      static_cast<int>(options.sizes.database * 0.25 * flags.scale);
  options.sizes.train =
      static_cast<int>(options.sizes.train * 0.4 * flags.scale);
  options.sizes.query =
      static_cast<int>(options.sizes.query * 0.3 * flags.scale);
  Rng rng(flags.seed + 17);
  env.dataset = data::MakeDatasetByName(flags.dataset, env.world.get(),
                                        options, &rng);
  env.vocab = data::MakeNusVocab(env.world.get());
  env.vlp = std::make_unique<vlp::SimulatedVlpModel>(env.world.get());
  return env;
}

int CmdTrain(const Flags& flags) {
  if (flags.model.empty()) {
    std::fprintf(stderr, "train: --model=PATH is required\n");
    return 2;
  }
  Env env = MakeEnv(flags);
  std::printf("corpus: %s database=%zu train=%zu query=%zu\n",
              env.dataset.name.c_str(), env.dataset.split.database.size(),
              env.dataset.split.train.size(), env.dataset.split.query.size());

  core::UhscmConfig config = core::DefaultConfigFor(flags.dataset, flags.bits);
  config.seed = flags.seed;
  core::UhscmTrainer trainer(env.vlp.get(), config);
  Result<core::UhscmModel> model = trainer.Train(
      env.dataset.pixels.SelectRows(env.dataset.split.train), env.vocab);
  if (!model.ok()) {
    std::fprintf(stderr, "train failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("trained: %zu retained concepts, final loss %.4f\n",
              model->retained_concepts.size(), model->epoch_losses.back());

  Status st = io::SaveHashingNetwork(*model->network, flags.model);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote model -> %s\n", flags.model.c_str());

  if (!flags.codes.empty()) {
    const linalg::Matrix db_codes = model->Encode(
        env.dataset.pixels.SelectRows(env.dataset.split.database));
    st = io::SavePackedCodes(index::PackedCodes::FromSignMatrix(db_codes),
                             flags.codes);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %d database codes -> %s\n", db_codes.rows(),
                flags.codes.c_str());
  }
  return 0;
}

int CmdInfo(const Flags& flags) {
  if (flags.file.empty()) {
    std::fprintf(stderr, "info: --file=PATH is required\n");
    return 2;
  }
  if (Result<std::unique_ptr<core::HashingNetwork>> net =
          io::LoadHashingNetwork(flags.file);
      net.ok()) {
    std::printf("%s: hashing network, input_dim=%d hidden=%d/%d bits=%d\n",
                flags.file.c_str(), (*net)->input_dim(),
                (*net)->options().hidden1, (*net)->options().hidden2,
                (*net)->bits());
    return 0;
  }
  if (Result<index::PackedCodes> codes = io::LoadPackedCodes(flags.file);
      codes.ok()) {
    std::printf("%s: packed codes, n=%d bits=%d (%d words/code)\n",
                flags.file.c_str(), codes->size(), codes->bits(),
                codes->words_per_code());
    return 0;
  }
  if (Result<linalg::Matrix> m = io::LoadMatrix(flags.file); m.ok()) {
    std::printf("%s: matrix, %dx%d\n", flags.file.c_str(), m->rows(),
                m->cols());
    return 0;
  }
  std::fprintf(stderr, "%s: not a recognized uhscm artifact\n",
               flags.file.c_str());
  return 1;
}

int CmdEval(const Flags& flags) {
  if (flags.model.empty()) {
    std::fprintf(stderr, "eval: --model=PATH is required\n");
    return 2;
  }
  Result<std::unique_ptr<core::HashingNetwork>> net =
      io::LoadHashingNetwork(flags.model);
  if (!net.ok()) {
    std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
    return 1;
  }
  Env env = MakeEnv(flags);
  const linalg::Matrix db_codes = (*net)->EncodeBinary(
      env.dataset.pixels.SelectRows(env.dataset.split.database));
  const linalg::Matrix query_codes = (*net)->EncodeBinary(
      env.dataset.pixels.SelectRows(env.dataset.split.query));
  eval::RetrievalEvalOptions options;
  options.map_at = 5000;
  options.topn_points = {10};
  const eval::RetrievalEvalResult result =
      eval::EvaluateRetrieval(env.dataset, db_codes, query_codes, options);
  std::printf("%s @ %d bits: MAP=%.4f P@10=%.4f (%zu queries)\n",
              flags.dataset.c_str(), (*net)->bits(), result.map,
              result.precision_at_n[0], env.dataset.split.query.size());
  return 0;
}

int CmdQuery(const Flags& flags) {
  if (flags.model.empty() || flags.codes.empty()) {
    std::fprintf(stderr, "query: --model= and --codes= are required\n");
    return 2;
  }
  Result<std::unique_ptr<core::HashingNetwork>> net =
      io::LoadHashingNetwork(flags.model);
  Result<index::PackedCodes> codes = io::LoadPackedCodes(flags.codes);
  if (!net.ok() || !codes.ok()) {
    std::fprintf(stderr, "failed to reload artifacts\n");
    return 1;
  }
  Env env = MakeEnv(flags);
  if (codes->size() != static_cast<int>(env.dataset.split.database.size())) {
    std::fprintf(stderr,
                 "code count (%d) does not match the corpus database (%zu) "
                 "— wrong --seed/--scale/--dataset?\n",
                 codes->size(), env.dataset.split.database.size());
    return 1;
  }
  index::LinearScanIndex scan(std::move(codes.ValueOrDie()));
  const linalg::Matrix query_codes = (*net)->EncodeBinary(
      env.dataset.pixels.SelectRows(env.dataset.split.query));
  const index::PackedCodes packed =
      index::PackedCodes::FromSignMatrix(query_codes);

  const int shown = std::min(flags.queries, packed.size());
  for (int q = 0; q < shown; ++q) {
    const int query_image = env.dataset.split.query[static_cast<size_t>(q)];
    std::printf("query %d:", q);
    for (const index::Neighbor& nb : scan.TopK(packed.code(q), flags.topk)) {
      const int db_image =
          env.dataset.split.database[static_cast<size_t>(nb.id)];
      std::printf(" %c%d(d=%d)",
                  env.dataset.Relevant(query_image, db_image) ? '+' : '-',
                  nb.id, nb.distance);
    }
    std::printf("\n");
  }
  return 0;
}

int CmdServe(const Flags& flags) {
  if (flags.codes.empty()) {
    std::fprintf(stderr, "serve: --codes=PATH is required\n");
    return 2;
  }
  if (flags.backend != "scan" && flags.backend != "mih") {
    std::fprintf(stderr, "serve: --backend must be scan or mih\n");
    return 2;
  }
  Result<index::PackedCodes> corpus = io::LoadPackedCodes(flags.codes);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  // Build the query stream: real encoded queries when a model is given,
  // otherwise database codes replayed against themselves. Either way
  // `--queries` caps the stream.
  const int max_queries = std::max(1, flags.queries);
  index::PackedCodes queries;
  if (!flags.model.empty()) {
    Result<std::unique_ptr<core::HashingNetwork>> net =
        io::LoadHashingNetwork(flags.model);
    if (!net.ok()) {
      std::fprintf(stderr, "%s\n", net.status().ToString().c_str());
      return 1;
    }
    if ((*net)->bits() != corpus->bits()) {
      std::fprintf(stderr,
                   "serve: model emits %d-bit codes but %s holds %d-bit "
                   "codes — wrong --model/--codes pairing?\n",
                   (*net)->bits(), flags.codes.c_str(), corpus->bits());
      return 1;
    }
    Env env = MakeEnv(flags);
    std::vector<int> query_rows = env.dataset.split.query;
    if (static_cast<int>(query_rows.size()) > max_queries) {
      query_rows.resize(static_cast<size_t>(max_queries));
    }
    queries = index::PackedCodes::FromSignMatrix(
        (*net)->EncodeBinary(env.dataset.pixels.SelectRows(query_rows)));
  } else {
    const int count = std::min(max_queries, corpus->size());
    std::vector<uint64_t> words(
        corpus->words().begin(),
        corpus->words().begin() +
            static_cast<size_t>(count) * corpus->words_per_code());
    queries = index::PackedCodes::FromRawWords(count, corpus->bits(),
                                               std::move(words));
  }

  serve::ServingSnapshotOptions options;
  options.index.num_shards = flags.shards;
  options.index.backend = flags.backend == "mih"
                              ? serve::ShardBackend::kMultiIndexHash
                              : serve::ShardBackend::kLinearScan;
  options.engine.num_threads = flags.threads;
  std::unique_ptr<serve::QueryEngine> engine =
      serve::MakeQueryEngine(std::move(corpus).ValueOrDie(), options);
  std::printf(
      "serving %d codes @ %d bits: %d shards (%s), %d threads, %s kernel\n",
      engine->index().size(), engine->index().bits(),
      engine->index().num_shards(), flags.backend.c_str(),
      engine->num_threads(),
      index::KernelTierName(index::ActiveKernelTier()));

  TableWriter table({"pass", "queries", "batches", "hit_rate", "qps",
                     "p50_ms", "p99_ms"});
  for (const char* pass : {"cold", "cache-hot"}) {
    serve::ReplayBatches(engine.get(), queries, flags.batch, flags.topk);
    const serve::ServeStatsSnapshot stats = engine->stats();
    char hit_rate[32], qps[32], p50[32], p99[32];
    std::snprintf(hit_rate, sizeof(hit_rate), "%.2f", stats.hit_rate());
    std::snprintf(qps, sizeof(qps), "%.1f", stats.qps());
    std::snprintf(p50, sizeof(p50), "%.3f", stats.latency_p50_ms);
    std::snprintf(p99, sizeof(p99), "%.3f", stats.latency_p99_ms);
    table.AddRow({pass, std::to_string(stats.queries),
                  std::to_string(stats.batches), hit_rate, qps, p50, p99});
    engine->ResetStats();
  }
  table.Print(std::cout);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();
  if (command == "train") return CmdTrain(flags);
  if (command == "info") return CmdInfo(flags);
  if (command == "eval") return CmdEval(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "serve") return CmdServe(flags);
  return Usage();
}

}  // namespace
}  // namespace uhscm::cli

int main(int argc, char** argv) { return uhscm::cli::Main(argc, argv); }
